//! The compiled simulation engine: elaborate once, execute a flat tape.
//!
//! [`compile`] turns a flattened [`Module`] into a [`CompiledSim`]:
//!
//! 1. every signal is interned into a dense word-indexed atom table, so
//!    the hot path never hashes a string;
//! 2. continuous assigns and combinational `always` blocks are
//!    dependency-analysed (bit-range granular) and topologically sorted
//!    **once** — a combinational loop is a compile-time error naming the
//!    exact signal cycle;
//! 3. every process is lowered into a flat stack-machine instruction
//!    tape (see [`crate::exec`]) executed over a two-region
//!    stable/shadow value buffer.
//!
//! `settle()` is then a single ordered sweep and `step()` a shadow
//! commit plus one sweep — no fixpoint iteration, no tree walking, no
//! hashing. The engine is cycle-for-cycle identical to the interpreter
//! ([`crate::Simulator`]) on well-formed designs; the differential test
//! suite byte-compares both backends across the whole bench-gen corpus.
//!
//! Known (documented) divergences, all outside the corpus subset: the
//! compiler reports unknown signals, nonblocking concatenation targets
//! and combinational loops at compile time where the interpreter only
//! errors when the offending path executes, and write targets that are
//! never declared are pre-declared at compile time instead of springing
//! into existence at first write.

use std::collections::{BTreeSet, HashMap};

use crate::ast::*;
use crate::exec::{run_tape, Instr, Machine};
use crate::interp::{mask, SimError};
use crate::sched::{self, CombRef};

/// Dense signal tables built during elaboration.
#[derive(Debug, Clone, Default)]
struct Table {
    names: Vec<String>,
    index: HashMap<String, u32>,
    widths: Vec<u32>,
    values: Vec<u128>,
}

impl Table {
    fn declare(&mut self, name: &str, width: u32) -> u32 {
        if let Some(&atom) = self.index.get(name) {
            self.widths[atom as usize] = width.min(128);
            return atom;
        }
        let atom = self.names.len() as u32;
        self.index.insert(name.to_string(), atom);
        self.names.push(name.to_string());
        self.widths.push(width.min(128));
        self.values.push(0);
        atom
    }
}

/// Where an expression reads its operands from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    /// Live state (blocking RHSs, bit indices of blocking stores,
    /// for-loop conditions, continuous assigns).
    Live,
    /// Snapshot state (`if`/`case` conditions, subjects and labels,
    /// nonblocking RHSs and indices) — pre-edge values in clocked
    /// processes, block-entry values in combinational `always` blocks.
    Pre,
}

/// Lowers expressions and statements of one process into a tape.
struct Lowerer<'a> {
    tape: &'a mut Vec<Instr>,
    index: &'a HashMap<String, u32>,
    widths: &'a [u32],
    /// Atoms read through the snapshot region by this process (drives
    /// the selective block-entry snapshot of comb `always` tapes).
    pre_atoms: BTreeSet<u32>,
    next_temp: u32,
    next_loop: u32,
}

impl<'a> Lowerer<'a> {
    fn new(tape: &'a mut Vec<Instr>, index: &'a HashMap<String, u32>, widths: &'a [u32]) -> Self {
        Self { tape, index, widths, pre_atoms: BTreeSet::new(), next_temp: 0, next_loop: 0 }
    }

    fn atom(&self, name: &str) -> Result<u32, SimError> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| SimError::new(format!("unknown signal `{name}`")))
    }

    fn emit(&mut self, instr: Instr) -> usize {
        self.tape.push(instr);
        self.tape.len() - 1
    }

    fn pos(&self) -> u32 {
        self.tape.len() as u32
    }

    fn patch(&mut self, at: usize, to: u32) {
        match &mut self.tape[at] {
            Instr::Jump(t) | Instr::JumpIfZero(t) => *t = to,
            Instr::JumpIfEqTemp { target, .. } => *target = to,
            other => unreachable!("patched a non-jump instruction {other:?}"),
        }
    }

    fn load(&mut self, atom: u32, ctx: Ctx) {
        match ctx {
            Ctx::Live => self.emit(Instr::Load(atom)),
            Ctx::Pre => {
                self.pre_atoms.insert(atom);
                self.emit(Instr::LoadPre(atom))
            }
        };
    }

    /// Self-determined width of an expression — the interpreter's
    /// simplified LRM rules over the compile-time width table.
    fn expr_width(&self, expr: &Expr) -> u32 {
        match expr {
            Expr::Ident(name) => {
                self.index.get(name).map(|&a| self.widths[a as usize]).unwrap_or(32)
            }
            Expr::Literal(l) => l.width.unwrap_or(32),
            Expr::Str(_) => 0,
            Expr::Bit { .. } => 1,
            Expr::Part { msb, lsb, .. } => msb.abs_diff(*lsb) as u32 + 1,
            Expr::Unary { op, operand } => match op {
                UnaryOp::Not | UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor => 1,
                _ => self.expr_width(operand),
            },
            Expr::Binary { op, lhs, rhs } => match op {
                BinaryOp::LogicOr
                | BinaryOp::LogicAnd
                | BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::CaseEq
                | BinaryOp::CaseNeq
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge => 1,
                _ => self.expr_width(lhs).max(self.expr_width(rhs)),
            },
            Expr::Ternary { then_expr, else_expr, .. } => {
                self.expr_width(then_expr).max(self.expr_width(else_expr))
            }
            Expr::Concat(parts) => parts.iter().map(|p| self.expr_width(p)).sum(),
            Expr::Repeat { count, expr } => count * self.expr_width(expr),
        }
    }

    fn lvalue_width(&self, lhs: &LValue) -> Result<u32, SimError> {
        match lhs {
            LValue::Ident(name) => Ok(self.widths[self.atom(name)? as usize]),
            LValue::Bit { .. } => Ok(1),
            LValue::Part { msb, lsb, .. } => Ok(msb.abs_diff(*lsb) as u32 + 1),
            LValue::Concat(parts) => {
                let mut total = 0;
                for p in parts {
                    total += self.lvalue_width(p)?;
                }
                Ok(total)
            }
        }
    }

    fn lower_expr(&mut self, expr: &Expr, ctx: Ctx) -> Result<(), SimError> {
        match expr {
            Expr::Ident(name) => {
                let atom = self.atom(name)?;
                self.load(atom, ctx);
            }
            Expr::Literal(l) => {
                let v = match l.width {
                    Some(w) => mask(l.value, w),
                    None => l.value,
                };
                self.emit(Instr::Const(v));
            }
            Expr::Str(_) => {
                self.emit(Instr::Const(0));
            }
            Expr::Bit { name, index } => {
                let atom = self.atom(name)?;
                self.load(atom, ctx);
                self.lower_expr(index, ctx)?;
                self.emit(Instr::BitSel);
            }
            Expr::Part { name, msb, lsb } => {
                let atom = self.atom(name)?;
                self.load(atom, ctx);
                let (hi, lo) = (*msb.max(lsb) as u32, *msb.min(lsb) as u32);
                self.emit(Instr::PartSel { lo, width: hi - lo + 1 });
            }
            Expr::Unary { op, operand } => {
                let w = self.expr_width(operand);
                self.lower_expr(operand, ctx)?;
                self.emit(Instr::Unary(*op, w));
            }
            Expr::Binary { op, lhs, rhs } => {
                let w = self.expr_width(expr);
                self.lower_expr(lhs, ctx)?;
                self.lower_expr(rhs, ctx)?;
                self.emit(Instr::Binary(*op, w));
            }
            Expr::Ternary { cond, then_expr, else_expr } => {
                // Both branches are pure and total, so unlike the
                // interpreter's lazy pick both can be evaluated eagerly.
                self.lower_expr(cond, ctx)?;
                self.lower_expr(then_expr, ctx)?;
                self.lower_expr(else_expr, ctx)?;
                self.emit(Instr::Select);
            }
            Expr::Concat(parts) => {
                self.emit(Instr::Const(0));
                for part in parts {
                    let w = self.expr_width(part);
                    self.lower_expr(part, ctx)?;
                    self.emit(Instr::ConcatFold(w));
                }
            }
            Expr::Repeat { count, expr } => {
                let w = self.expr_width(expr);
                self.lower_expr(expr, ctx)?;
                self.emit(Instr::RepeatFold { count: *count, width: w });
            }
        }
        Ok(())
    }

    /// Stores the top of stack to `lhs` with live (blocking) semantics.
    fn lower_store(&mut self, lhs: &LValue) -> Result<(), SimError> {
        match lhs {
            LValue::Ident(name) => {
                let atom = self.atom(name)?;
                self.emit(Instr::Store(atom));
            }
            LValue::Bit { name, index } => {
                let atom = self.atom(name)?;
                self.lower_expr(index, Ctx::Live)?;
                self.emit(Instr::StoreBit(atom));
            }
            LValue::Part { name, msb, lsb } => {
                let atom = self.atom(name)?;
                let (hi, lo) = (*msb.max(lsb) as u32, *msb.min(lsb) as u32);
                self.emit(Instr::StorePart { atom, lo, width: hi - lo + 1 });
            }
            LValue::Concat(parts) => {
                // Assign from LSB part upward, shifting the residual.
                for part in parts.iter().rev() {
                    let w = self.lvalue_width(part)?;
                    self.emit(Instr::Dup);
                    self.lower_store(part)?;
                    self.emit(Instr::ShrConst(w));
                }
                self.emit(Instr::Pop);
            }
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), SimError> {
        match stmt {
            Stmt::Block { stmts, .. } => {
                for s in stmts {
                    self.lower_stmt(s)?;
                }
            }
            Stmt::If { cond, then_branch, else_branch } => {
                self.lower_expr(cond, Ctx::Pre)?;
                let jz = self.emit(Instr::JumpIfZero(0));
                self.lower_stmt(then_branch)?;
                match else_branch {
                    Some(els) => {
                        let jend = self.emit(Instr::Jump(0));
                        let else_start = self.pos();
                        self.patch(jz, else_start);
                        self.lower_stmt(els)?;
                        let end = self.pos();
                        self.patch(jend, end);
                    }
                    None => {
                        let end = self.pos();
                        self.patch(jz, end);
                    }
                }
            }
            Stmt::Case { subject, arms, default, .. } => {
                self.lower_expr(subject, Ctx::Pre)?;
                let temp = self.next_temp;
                self.next_temp += 1;
                self.emit(Instr::StoreTemp(temp));
                // Labels are tested in source order; a match jumps to
                // its arm body, a fall-through runs the default.
                let mut label_jumps: Vec<(usize, usize)> = Vec::new();
                for (arm_idx, arm) in arms.iter().enumerate() {
                    for label in &arm.labels {
                        self.lower_expr(label, Ctx::Pre)?;
                        let at = self.emit(Instr::JumpIfEqTemp { temp, target: 0 });
                        label_jumps.push((at, arm_idx));
                    }
                }
                let mut end_jumps = Vec::new();
                if let Some(d) = default {
                    self.lower_stmt(d)?;
                }
                end_jumps.push(self.emit(Instr::Jump(0)));
                let mut body_starts = vec![0u32; arms.len()];
                for (arm_idx, arm) in arms.iter().enumerate() {
                    body_starts[arm_idx] = self.pos();
                    self.lower_stmt(&arm.body)?;
                    end_jumps.push(self.emit(Instr::Jump(0)));
                }
                let end = self.pos();
                for (at, arm_idx) in label_jumps {
                    self.patch(at, body_starts[arm_idx]);
                }
                for at in end_jumps {
                    self.patch(at, end);
                }
            }
            Stmt::Blocking { lhs, rhs } => {
                self.lower_expr(rhs, Ctx::Live)?;
                self.lower_store(lhs)?;
            }
            Stmt::Nonblocking { lhs, rhs } => {
                self.lower_expr(rhs, Ctx::Pre)?;
                match lhs {
                    LValue::Ident(name) => {
                        let atom = self.atom(name)?;
                        self.emit(Instr::NbStore(atom));
                    }
                    LValue::Bit { name, index } => {
                        let atom = self.atom(name)?;
                        self.lower_expr(index, Ctx::Pre)?;
                        // Read-modify-write starts from the pre value.
                        self.pre_atoms.insert(atom);
                        self.emit(Instr::NbStoreBit(atom));
                    }
                    LValue::Part { name, msb, lsb } => {
                        let atom = self.atom(name)?;
                        let (hi, lo) = (*msb.max(lsb) as u32, *msb.min(lsb) as u32);
                        self.pre_atoms.insert(atom);
                        self.emit(Instr::NbStorePart { atom, lo, width: hi - lo + 1 });
                    }
                    LValue::Concat(_) => {
                        return Err(SimError::new(
                            "nonblocking concatenation targets are not supported",
                        ))
                    }
                }
            }
            Stmt::For { init, cond, step, body } => {
                self.lower_stmt(init)?;
                let slot = self.next_loop;
                self.next_loop += 1;
                self.emit(Instr::LoopInit(slot));
                let cond_start = self.pos();
                self.lower_expr(cond, Ctx::Live)?;
                let jz = self.emit(Instr::JumpIfZero(0));
                self.lower_stmt(body)?;
                self.lower_stmt(step)?;
                self.emit(Instr::LoopBump { slot, target: cond_start });
                let end = self.pos();
                self.patch(jz, end);
            }
            Stmt::SystemCall { .. } | Stmt::Null => {}
        }
        Ok(())
    }
}

/// Evaluates a parameter value against the signals declared so far by
/// lowering it to a throwaway tape and running it on a scratch machine.
fn const_eval(expr: &Expr, table: &Table) -> Result<u128, SimError> {
    let mut tape = Vec::new();
    let mut lower = Lowerer::new(&mut tape, &table.index, &table.widths);
    lower.lower_expr(expr, Ctx::Live)?;
    let mut machine = Machine::new(table.values.clone(), 0, 0);
    run_tape(&tape, &table.widths, &mut machine)?;
    Ok(machine.stack.pop().expect("constant expression must produce a value"))
}

/// Collects the whole-signal targets of one statement tree, split by
/// assignment kind, for pre-declaring write targets the module never
/// declares (the interpreter would create them at first write).
fn lvalue_idents<'m>(lhs: &'m LValue, out: &mut Vec<&'m str>) {
    match lhs {
        LValue::Ident(name) => out.push(name),
        LValue::Bit { .. } | LValue::Part { .. } => {}
        LValue::Concat(parts) => {
            for p in parts {
                lvalue_idents(p, out);
            }
        }
    }
}

fn collect_targets<'m>(
    stmt: &'m Stmt,
    blocking: &mut Vec<&'m str>,
    nonblocking: &mut Vec<&'m str>,
) {
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts {
                collect_targets(s, blocking, nonblocking);
            }
        }
        Stmt::If { then_branch, else_branch, .. } => {
            collect_targets(then_branch, blocking, nonblocking);
            if let Some(els) = else_branch {
                collect_targets(els, blocking, nonblocking);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for arm in arms {
                collect_targets(&arm.body, blocking, nonblocking);
            }
            if let Some(d) = default {
                collect_targets(d, blocking, nonblocking);
            }
        }
        Stmt::Blocking { lhs, .. } => lvalue_idents(lhs, blocking),
        Stmt::Nonblocking { lhs, .. } => lvalue_idents(lhs, nonblocking),
        Stmt::For { init, step, body, .. } => {
            collect_targets(init, blocking, nonblocking);
            collect_targets(step, blocking, nonblocking);
            collect_targets(body, blocking, nonblocking);
        }
        Stmt::SystemCall { .. } | Stmt::Null => {}
    }
}

/// A compiled two-state simulator: same cycle-for-cycle behaviour as
/// [`crate::Simulator`], one ordered sweep per settle.
///
/// # Examples
///
/// ```
/// use noodle_verilog::{compile, parse};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let file = parse(
///     "module counter(input clk, input rst, output reg [3:0] q);
///        always @(posedge clk) if (rst) q <= 4'd0; else q <= q + 4'd1;
///      endmodule",
/// )?;
/// let mut sim = compile(&file.modules[0])?;
/// sim.set("rst", 1)?;
/// sim.step("clk")?;
/// sim.set("rst", 0)?;
/// for _ in 0..5 {
///     sim.step("clk")?;
/// }
/// assert_eq!(sim.get("q"), Some(5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSim {
    names: Vec<String>,
    index: HashMap<String, u32>,
    widths: Vec<u32>,
    inputs: Vec<(String, u32)>,
    outputs: Vec<(String, u32)>,
    /// All combinational processes, scheduled, as one concatenated tape.
    comb: Vec<Instr>,
    /// Clocked processes: sensitivity signals plus their tape.
    clocked: Vec<(Vec<String>, Vec<Instr>)>,
    initials: Vec<Vec<Instr>>,
    machine: Machine,
    initialized: bool,
}

/// Compiles a flattened module into a [`CompiledSim`].
///
/// Use [`crate::transform::flatten`] first for hierarchical designs —
/// like the interpreter, the compiler rejects module instances.
///
/// # Errors
///
/// Returns [`SimError`] if the module instantiates submodules, reads a
/// signal that is never declared or written, uses a construct outside
/// the supported subset, or contains a combinational loop (reported
/// with the exact signal cycle — see [`SimError::cycle`]).
pub fn compile(module: &Module) -> Result<CompiledSim, SimError> {
    // Elaborate: intern signals, evaluate parameters, split processes.
    let mut table = Table::default();
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut comb_procs: Vec<CombRef<'_>> = Vec::new();
    let mut clocked_procs: Vec<(&[EventExpr], &Stmt)> = Vec::new();
    let mut initial_bodies: Vec<&Stmt> = Vec::new();
    {
        let _span =
            noodle_telemetry::span!("sim.elaborate", module = module.name, backend = "compiled");
        for port in module.resolved_ports() {
            let width = port.range.map(|r| r.width() as u32).unwrap_or(1);
            table.declare(&port.name, width);
            match port.direction {
                PortDirection::Input => inputs.push((port.name.clone(), width)),
                PortDirection::Output => outputs.push((port.name.clone(), width)),
                _ => {}
            }
        }
        for item in &module.items {
            match item {
                Item::Decl { range, names, .. } => {
                    let width = range.map(|r| r.width() as u32).unwrap_or(32);
                    for name in names {
                        table.declare(name, width);
                    }
                }
                Item::PortDecl { .. } => {}
                Item::Parameter { name, value } | Item::Localparam { name, value } => {
                    let atom = table.declare(name, 32);
                    // Parameter values are stored unmasked, as in the
                    // interpreter.
                    table.values[atom as usize] = const_eval(value, &table)?;
                }
                Item::Assign { lhs, rhs } => comb_procs.push(CombRef::Assign { lhs, rhs }),
                Item::Always { event, body } => match event {
                    EventControl::Star => comb_procs.push(CombRef::Always { body }),
                    EventControl::Events(events) => {
                        if events.iter().any(|e| e.edge.is_some()) {
                            clocked_procs.push((events, body));
                        } else {
                            comb_procs.push(CombRef::Always { body });
                        }
                    }
                },
                Item::Initial { body } => initial_bodies.push(body),
                Item::Instance { .. } => {
                    return Err(SimError::new(
                        "module instances are not supported; flatten the design first",
                    ))
                }
            }
        }

        // Pre-declare write targets the module never declares: blocking
        // targets get the interpreter's auto-declared width of 1,
        // nonblocking-only targets stay unmasked (width 128).
        let mut blocking: Vec<&str> = Vec::new();
        let mut nonblocking: Vec<&str> = Vec::new();
        for proc_ref in &comb_procs {
            match proc_ref {
                CombRef::Assign { lhs, .. } => lvalue_idents(lhs, &mut blocking),
                CombRef::Always { body } => collect_targets(body, &mut blocking, &mut nonblocking),
            }
        }
        for (_, body) in &clocked_procs {
            collect_targets(body, &mut blocking, &mut nonblocking);
        }
        for body in &initial_bodies {
            collect_targets(body, &mut blocking, &mut nonblocking);
        }
        for name in blocking {
            if !table.index.contains_key(name) {
                table.declare(name, 1);
            }
        }
        for name in nonblocking {
            if !table.index.contains_key(name) {
                table.declare(name, 128);
            }
        }
    }

    let _span = noodle_telemetry::span!(
        "sim.compile",
        module = module.name,
        signals = table.names.len(),
        processes = comb_procs.len() + clocked_procs.len()
    );

    // Schedule: one topological order for all combinational processes.
    let resolve =
        |name: &str| table.index.get(name).map(|&atom| (atom, table.widths[atom as usize]));
    let ios: Vec<_> = comb_procs.iter().map(|p| sched::comb_io(*p, &resolve)).collect();
    let order = sched::schedule(&ios).map_err(|cycle| {
        let chain =
            cycle.atoms.iter().map(|&a| table.names[a as usize].clone()).collect::<Vec<_>>();
        SimError::combinational_loop(chain)
    })?;

    // Lower every process to its tape.
    let mut max_temps = 0u32;
    let mut max_loops = 0u32;
    let mut comb = Vec::new();
    {
        let mut lower = Lowerer::new(&mut comb, &table.index, &table.widths);
        for &i in &order {
            match comb_procs[i] {
                CombRef::Assign { lhs, rhs } => {
                    lower.lower_expr(rhs, Ctx::Live)?;
                    lower.lower_store(lhs)?;
                }
                CombRef::Always { body } => {
                    // Placeholder snapshot, patched with the atoms this
                    // process reads at block entry once the body is
                    // lowered.
                    let snap_at = lower.emit(Instr::Snapshot(Box::new([])));
                    lower.pre_atoms.clear();
                    lower.lower_stmt(body)?;
                    let atoms: Box<[u32]> = lower.pre_atoms.iter().copied().collect();
                    lower.tape[snap_at] = Instr::Snapshot(atoms);
                    lower.emit(Instr::NbFlush);
                }
            }
        }
        max_temps = max_temps.max(lower.next_temp);
        max_loops = max_loops.max(lower.next_loop);
    }

    let mut clocked = Vec::with_capacity(clocked_procs.len());
    for (events, body) in &clocked_procs {
        let mut tape = Vec::new();
        let mut lower = Lowerer::new(&mut tape, &table.index, &table.widths);
        lower.lower_stmt(body)?;
        max_temps = max_temps.max(lower.next_temp);
        max_loops = max_loops.max(lower.next_loop);
        let signals: Vec<String> = events.iter().map(|e| e.signal.clone()).collect();
        clocked.push((signals, tape));
    }

    let mut initials = Vec::with_capacity(initial_bodies.len());
    for body in &initial_bodies {
        let mut tape = Vec::new();
        let mut lower = Lowerer::new(&mut tape, &table.index, &table.widths);
        lower.lower_stmt(body)?;
        lower.emit(Instr::NbFlush);
        max_temps = max_temps.max(lower.next_temp);
        max_loops = max_loops.max(lower.next_loop);
        initials.push(tape);
    }

    let machine = Machine::new(table.values, max_temps as usize, max_loops as usize);
    Ok(CompiledSim {
        names: table.names,
        index: table.index,
        widths: table.widths,
        inputs,
        outputs,
        comb,
        clocked,
        initials,
        machine,
        initialized: false,
    })
}

impl CompiledSim {
    /// Compiles a flattened module; alias of [`compile`].
    ///
    /// # Errors
    ///
    /// See [`compile`].
    pub fn new(module: &Module) -> Result<Self, SimError> {
        compile(module)
    }

    fn ensure_initialized(&mut self) -> Result<(), SimError> {
        if self.initialized {
            return Ok(());
        }
        self.initialized = true;
        for tape in &self.initials {
            self.machine.nb.clear();
            self.machine.shadow.copy_from_slice(&self.machine.stable);
            run_tape(tape, &self.widths, &mut self.machine)?;
        }
        self.settle()
    }

    /// Sets an input (or any signal) to `value`, truncated to its width,
    /// and re-settles combinational logic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the signal does not exist or settling fails.
    pub fn set(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        self.ensure_initialized()?;
        let atom = *self
            .index
            .get(name)
            .ok_or_else(|| SimError::new(format!("unknown signal `{name}`")))?;
        self.machine.stable[atom as usize] = mask(value, self.widths[atom as usize]);
        self.settle()
    }

    /// Current value of a signal, if it exists.
    pub fn get(&self, name: &str) -> Option<u128> {
        let &atom = self.index.get(name)?;
        Some(self.machine.stable[atom as usize])
    }

    /// Width in bits of a signal, if it exists.
    pub fn width(&self, name: &str) -> Option<u32> {
        let &atom = self.index.get(name)?;
        Some(self.widths[atom as usize])
    }

    /// The module's input ports as `(name, width)` pairs, in declaration
    /// order.
    pub fn inputs(&self) -> &[(String, u32)] {
        &self.inputs
    }

    /// The module's output ports as `(name, width)` pairs, in declaration
    /// order.
    pub fn outputs(&self) -> &[(String, u32)] {
        &self.outputs
    }

    /// Names of every signal in the simulation, in atom order
    /// (declaration order for a flattened module).
    pub fn signal_names(&self) -> Vec<String> {
        self.names.clone()
    }

    /// Performs one positive clock edge on `clock`: pre-edge state is
    /// committed to the shadow region, every clocked process sensitive
    /// to the clock runs, queued nonblocking updates land, and the
    /// combinational tape sweeps once.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a for loop exceeds its iteration budget.
    pub fn step(&mut self, clock: &str) -> Result<(), SimError> {
        self.ensure_initialized()?;
        self.machine.shadow.copy_from_slice(&self.machine.stable);
        self.machine.nb.clear();
        for (events, tape) in &self.clocked {
            if events.iter().any(|s| s == clock) {
                run_tape(tape, &self.widths, &mut self.machine)?;
            }
        }
        self.machine.flush_nb(&self.widths);
        self.settle()
    }

    /// Fires every clocked process sensitive to an edge on `signal`
    /// (asynchronous set/reset modelling).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] under the same conditions as
    /// [`CompiledSim::step`].
    pub fn async_reset(&mut self, signal: &str) -> Result<(), SimError> {
        self.step(signal)
    }

    /// Runs `cycles` clock cycles.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] under the same conditions as
    /// [`CompiledSim::step`].
    pub fn run(&mut self, clock: &str, cycles: usize) -> Result<(), SimError> {
        let _span = noodle_telemetry::span!("sim.run", cycles = cycles, backend = "compiled");
        let start = std::time::Instant::now();
        for _ in 0..cycles {
            self.step(clock)?;
        }
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.0 {
            noodle_telemetry::gauge_set("sim.cycles_per_sec", cycles as f64 / secs);
        }
        Ok(())
    }

    /// Propagates combinational logic: one ordered sweep (scheduling
    /// already proved the absence of loops at compile time).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a for loop exceeds its iteration budget.
    pub fn settle(&mut self) -> Result<(), SimError> {
        run_tape(&self.comb, &self.widths, &mut self.machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Simulator;
    use crate::parse;

    fn compiled_of(src: &str) -> CompiledSim {
        let file = parse(src).unwrap();
        compile(&file.modules[0]).unwrap()
    }

    /// Runs the same stimulus on both backends and asserts every signal
    /// matches after every operation.
    fn assert_backends_agree(src: &str, clock: &str, stimuli: &[(&str, u128)], cycles: usize) {
        let file = parse(src).unwrap();
        let mut interp = Simulator::new(&file.modules[0]).unwrap();
        let mut compiled = compile(&file.modules[0]).unwrap();
        for &(name, value) in stimuli {
            interp.set(name, value).unwrap();
            compiled.set(name, value).unwrap();
        }
        for cycle in 0..cycles {
            interp.step(clock).unwrap();
            compiled.step(clock).unwrap();
            for name in compiled.signal_names() {
                assert_eq!(
                    compiled.get(&name),
                    interp.get(&name),
                    "signal `{name}` diverged at cycle {cycle}"
                );
            }
        }
    }

    #[test]
    fn combinational_gates() {
        let mut sim = compiled_of(
            "module m(input a, input b, output y, output z);
                assign y = a & b;
                assign z = a ^ b;
            endmodule",
        );
        sim.set("a", 1).unwrap();
        sim.set("b", 1).unwrap();
        assert_eq!(sim.get("y"), Some(1));
        assert_eq!(sim.get("z"), Some(0));
        sim.set("b", 0).unwrap();
        assert_eq!(sim.get("y"), Some(0));
        assert_eq!(sim.get("z"), Some(1));
    }

    #[test]
    fn counter_counts_and_wraps() {
        let mut sim = compiled_of(
            "module m(input clk, input rst, output reg [1:0] q);
                always @(posedge clk) if (rst) q <= 2'd0; else q <= q + 2'd1;
            endmodule",
        );
        sim.set("rst", 1).unwrap();
        sim.step("clk").unwrap();
        sim.set("rst", 0).unwrap();
        for expected in [1u128, 2, 3, 0, 1] {
            sim.step("clk").unwrap();
            assert_eq!(sim.get("q"), Some(expected));
        }
    }

    #[test]
    fn out_of_order_assigns_settle_in_one_sweep() {
        // Declaration order is anti-topological: the scheduler must
        // reorder so a single sweep settles the chain.
        let mut sim = compiled_of(
            "module m(input a, output y);
                wire t1, t2;
                assign y = ~t2;
                assign t2 = ~t1;
                assign t1 = ~a;
            endmodule",
        );
        sim.set("a", 1).unwrap();
        assert_eq!(sim.get("y"), Some(0));
        sim.set("a", 0).unwrap();
        assert_eq!(sim.get("y"), Some(1));
    }

    #[test]
    fn nonblocking_swap() {
        let mut sim = compiled_of(
            "module m(input clk, output reg a, output reg b);
                initial begin a = 1'b1; b = 1'b0; end
                always @(posedge clk) a <= b;
                always @(posedge clk) b <= a;
            endmodule",
        );
        sim.set("clk", 0).unwrap(); // force initialization
        assert_eq!(sim.get("a"), Some(1));
        assert_eq!(sim.get("b"), Some(0));
        sim.step("clk").unwrap();
        assert_eq!(sim.get("a"), Some(0));
        assert_eq!(sim.get("b"), Some(1));
    }

    #[test]
    fn comb_always_with_case() {
        let mut sim = compiled_of(
            "module m(input [1:0] s, output reg [3:0] y);
                always @* case (s)
                    2'd0: y = 4'd1;
                    2'd1: y = 4'd2;
                    2'd2: y = 4'd4;
                    default: y = 4'd8;
                endcase
            endmodule",
        );
        for (s, y) in [(0u128, 1u128), (1, 2), (2, 4), (3, 8)] {
            sim.set("s", s).unwrap();
            assert_eq!(sim.get("y"), Some(y), "s = {s}");
        }
    }

    #[test]
    fn combinational_loop_is_a_compile_error() {
        let file = parse(
            "module m(output y);
                wire a;
                assign a = ~a;
                assign y = a;
            endmodule",
        )
        .unwrap();
        let err = compile(&file.modules[0]).unwrap_err();
        assert_eq!(err.cycle(), Some(&["a".to_string()][..]), "{err}");
        assert!(err.to_string().contains("a -> a"), "{err}");
    }

    #[test]
    fn two_signal_loop_names_the_cycle() {
        let file = parse(
            "module m(output y);
                wire a, b;
                assign a = ~b;
                assign b = ~a;
                assign y = a;
            endmodule",
        )
        .unwrap();
        let err = compile(&file.modules[0]).unwrap_err();
        let cycle = err.cycle().expect("cycle should be named");
        assert_eq!(cycle.len(), 2, "{cycle:?}");
        assert!(err.to_string().contains("a -> b -> a"), "{err}");
    }

    #[test]
    fn for_loop_in_initial() {
        let mut sim = compiled_of(
            "module m(input clk, output reg [7:0] acc);
                integer i;
                initial begin
                    acc = 8'd0;
                    for (i = 0; i < 5; i = i + 1) acc = acc + 8'd2;
                end
            endmodule",
        );
        sim.set("clk", 0).unwrap();
        assert_eq!(sim.get("acc"), Some(10));
    }

    #[test]
    fn bit_assignment_read_modify_write() {
        let mut sim = compiled_of(
            "module m(input [2:0] idx, input v, output reg [7:0] r);
                always @* begin
                    r = 8'd0;
                    r[idx] = v;
                end
            endmodule",
        );
        sim.set("idx", 3).unwrap();
        sim.set("v", 1).unwrap();
        assert_eq!(sim.get("r"), Some(8));
    }

    #[test]
    fn unknown_signal_is_a_compile_error() {
        let file = parse("module m(input a, output y); assign y = nope; endmodule").unwrap();
        let err = compile(&file.modules[0]).unwrap_err();
        assert!(err.to_string().contains("unknown signal"), "{err}");
    }

    #[test]
    fn instances_rejected() {
        let file = parse("module m(input a, output y); sub u0(.i(a), .o(y)); endmodule").unwrap();
        assert!(compile(&file.modules[0]).is_err());
    }

    #[test]
    fn matches_interpreter_on_mixed_design() {
        assert_backends_agree(
            "module m(input clk, input rst, input [3:0] d, output reg [7:0] acc,
                      output reg [3:0] last, output [7:0] mix, output parity);
                wire [3:0] inc;
                parameter STEP = 3;
                assign inc = d + STEP;
                assign mix = {acc[3:0], inc};
                assign parity = ^acc;
                always @(posedge clk) begin
                    if (rst) begin
                        acc <= 8'd0;
                        last <= 4'd0;
                    end else begin
                        acc <= acc + {4'd0, inc};
                        last <= d;
                    end
                end
            endmodule",
            "clk",
            &[("rst", 1), ("d", 5)],
            8,
        );
    }

    #[test]
    fn matches_interpreter_on_case_and_parts() {
        assert_backends_agree(
            "module m(input clk, input [1:0] sel, input [7:0] d, output reg [7:0] q,
                      output [3:0] nib);
                assign nib = q[7:4];
                always @(posedge clk) begin
                    case (sel)
                        2'd0: q <= d;
                        2'd1: q[3:0] <= d[7:4];
                        2'd2: q[7] <= d[0];
                        default: q <= ~q;
                    endcase
                end
            endmodule",
            "clk",
            &[("sel", 1), ("d", 0xC3)],
            6,
        );
    }

    #[test]
    fn matches_interpreter_on_comb_always_retention() {
        // Incomplete if: y retains its value when en is low — both
        // engines must agree on the retained state.
        assert_backends_agree(
            "module m(input clk, input en, input [3:0] a, output reg [3:0] y,
                      output reg [3:0] cnt);
                always @* if (en) y = a;
                always @(posedge clk) cnt <= cnt + 4'd1;
            endmodule",
            "clk",
            &[("a", 9), ("en", 1)],
            4,
        );
    }

    #[test]
    fn concat_lvalue_store_matches() {
        assert_backends_agree(
            "module m(input clk, input [7:0] d, output reg [3:0] hi, output reg [3:0] lo);
                always @(posedge clk) {hi, lo} = d;
            endmodule",
            "clk",
            &[("d", 0xA7)],
            2,
        );
    }

    #[test]
    fn parameters_participate_in_expressions() {
        let mut sim = compiled_of(
            "module m(input [7:0] a, output [7:0] y);
                parameter K = 10;
                localparam K2 = K + 1;
                assign y = a + K2;
            endmodule",
        );
        sim.set("a", 4).unwrap();
        assert_eq!(sim.get("y"), Some(15));
    }

    #[test]
    fn vcd_surface_works_on_compiled_backend() {
        let file = parse(
            "module m(input clk, input rst, output reg [3:0] q);
                always @(posedge clk) if (rst) q <= 4'd0; else q <= q + 4'd1;
            endmodule",
        )
        .unwrap();
        let mut sim = compile(&file.modules[0]).unwrap();
        let mut vcd = crate::vcd::VcdRecorder::over_ports("m", &sim).unwrap();
        sim.set("rst", 0).unwrap();
        for _ in 0..3 {
            sim.step("clk").unwrap();
            vcd.sample(&sim).unwrap();
        }
        let dump = vcd.to_vcd();
        assert!(dump.contains("$enddefinitions"), "{dump}");
        assert!(dump.contains("q $end"), "{dump}");
    }
}
