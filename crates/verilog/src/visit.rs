//! AST traversal helpers.
//!
//! [`Visitor`] is a classic pre-order visitor with default no-op hooks; the
//! `walk_*` functions drive the traversal so implementors only override the
//! hooks they care about. Feature extractors in `noodle-graph` and
//! `noodle-tabular` are built on this.

use crate::ast::*;

/// A pre-order AST visitor with default no-op methods.
///
/// # Examples
///
/// ```
/// use noodle_verilog::{parse, visit::{walk_module, Visitor}, Stmt};
///
/// struct IfCounter(usize);
/// impl Visitor for IfCounter {
///     fn visit_stmt(&mut self, s: &Stmt) {
///         if matches!(s, Stmt::If { .. }) {
///             self.0 += 1;
///         }
///     }
/// }
///
/// # fn main() -> Result<(), noodle_verilog::ParseError> {
/// let file = parse("module m(input a, output reg y); always @* if (a) y = 1; else y = 0; endmodule")?;
/// let mut counter = IfCounter(0);
/// walk_module(&mut counter, &file.modules[0]);
/// assert_eq!(counter.0, 1);
/// # Ok(())
/// # }
/// ```
pub trait Visitor {
    /// Called for every module before its items.
    fn visit_module(&mut self, _module: &Module) {}
    /// Called for every item before its children.
    fn visit_item(&mut self, _item: &Item) {}
    /// Called for every statement before its children.
    fn visit_stmt(&mut self, _stmt: &Stmt) {}
    /// Called for every expression before its children.
    fn visit_expr(&mut self, _expr: &Expr) {}
    /// Called for every assignment target before its index expressions.
    fn visit_lvalue(&mut self, _lvalue: &LValue) {}
}

/// Walks a whole source file.
pub fn walk_source<V: Visitor + ?Sized>(v: &mut V, file: &SourceFile) {
    for m in &file.modules {
        walk_module(v, m);
    }
}

/// Walks one module and everything beneath it.
pub fn walk_module<V: Visitor + ?Sized>(v: &mut V, module: &Module) {
    v.visit_module(module);
    for item in &module.items {
        walk_item(v, item);
    }
}

/// Walks one item and everything beneath it.
pub fn walk_item<V: Visitor + ?Sized>(v: &mut V, item: &Item) {
    v.visit_item(item);
    match item {
        Item::Decl { .. } | Item::PortDecl { .. } => {}
        Item::Parameter { value, .. } | Item::Localparam { value, .. } => walk_expr(v, value),
        Item::Assign { lhs, rhs } => {
            walk_lvalue(v, lhs);
            walk_expr(v, rhs);
        }
        Item::Always { body, .. } | Item::Initial { body } => walk_stmt(v, body),
        Item::Instance { connections, .. } => {
            for c in connections {
                if let Some(e) = &c.expr {
                    walk_expr(v, e);
                }
            }
        }
    }
}

/// Walks one statement and everything beneath it.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, stmt: &Stmt) {
    v.visit_stmt(stmt);
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts {
                walk_stmt(v, s);
            }
        }
        Stmt::If { cond, then_branch, else_branch } => {
            walk_expr(v, cond);
            walk_stmt(v, then_branch);
            if let Some(e) = else_branch {
                walk_stmt(v, e);
            }
        }
        Stmt::Case { subject, arms, default, .. } => {
            walk_expr(v, subject);
            for arm in arms {
                for l in &arm.labels {
                    walk_expr(v, l);
                }
                walk_stmt(v, &arm.body);
            }
            if let Some(d) = default {
                walk_stmt(v, d);
            }
        }
        Stmt::Blocking { lhs, rhs } | Stmt::Nonblocking { lhs, rhs } => {
            walk_lvalue(v, lhs);
            walk_expr(v, rhs);
        }
        Stmt::For { init, cond, step, body } => {
            walk_stmt(v, init);
            walk_expr(v, cond);
            walk_stmt(v, step);
            walk_stmt(v, body);
        }
        Stmt::SystemCall { args, .. } => {
            for a in args {
                walk_expr(v, a);
            }
        }
        Stmt::Null => {}
    }
}

/// Walks one expression and everything beneath it.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, expr: &Expr) {
    v.visit_expr(expr);
    match expr {
        Expr::Ident(_) | Expr::Literal(_) | Expr::Str(_) | Expr::Part { .. } => {}
        Expr::Bit { index, .. } => walk_expr(v, index),
        Expr::Unary { operand, .. } => walk_expr(v, operand),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(v, lhs);
            walk_expr(v, rhs);
        }
        Expr::Ternary { cond, then_expr, else_expr } => {
            walk_expr(v, cond);
            walk_expr(v, then_expr);
            walk_expr(v, else_expr);
        }
        Expr::Concat(parts) => {
            for p in parts {
                walk_expr(v, p);
            }
        }
        Expr::Repeat { expr, .. } => walk_expr(v, expr),
    }
}

/// Walks one assignment target.
pub fn walk_lvalue<V: Visitor + ?Sized>(v: &mut V, lvalue: &LValue) {
    v.visit_lvalue(lvalue);
    match lvalue {
        LValue::Ident(_) | LValue::Part { .. } => {}
        LValue::Bit { index, .. } => walk_expr(v, index),
        LValue::Concat(parts) => {
            for p in parts {
                walk_lvalue(v, p);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[derive(Default)]
    struct Counter {
        items: usize,
        stmts: usize,
        exprs: usize,
        lvalues: usize,
    }

    impl Visitor for Counter {
        fn visit_item(&mut self, _: &Item) {
            self.items += 1;
        }
        fn visit_stmt(&mut self, _: &Stmt) {
            self.stmts += 1;
        }
        fn visit_expr(&mut self, _: &Expr) {
            self.exprs += 1;
        }
        fn visit_lvalue(&mut self, _: &LValue) {
            self.lvalues += 1;
        }
    }

    #[test]
    fn counts_everything_once() {
        let src = "module m(input clk, input a, output reg y);
            always @(posedge clk)
                if (a) y <= 1'b1; else y <= 1'b0;
        endmodule";
        let file = parse(src).unwrap();
        let mut c = Counter::default();
        walk_source(&mut c, &file);
        assert_eq!(c.items, 1); // the always block
        assert_eq!(c.stmts, 3); // if + two nonblocking
                                // exprs: cond `a`, rhs 1'b1, rhs 1'b0
        assert_eq!(c.exprs, 3);
        assert_eq!(c.lvalues, 2);
    }

    #[test]
    fn walks_into_case_labels_and_instances() {
        let src = "module m(input [1:0] s, input a, output reg y, output w);
            sub u0(.i(a & s[0]), .o(w));
            always @* case (s)
                2'd0, 2'd1: y = a;
                default: y = !a;
            endcase
        endmodule";
        let file = parse(src).unwrap();
        let mut c = Counter::default();
        walk_source(&mut c, &file);
        assert_eq!(c.items, 2);
        // stmts: the case itself, the single arm body, the default body
        assert_eq!(c.stmts, 3);
        assert!(c.exprs >= 8, "exprs = {}", c.exprs);
    }
}
