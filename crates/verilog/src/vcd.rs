//! VCD (Value Change Dump) waveform recording for any [`Simulate`]
//! backend.
//!
//! [`VcdRecorder`] samples chosen signals after each interesting point of a
//! simulation and serializes the trace in the standard IEEE 1364 VCD text
//! format, viewable in GTKWave and friends — handy when dissecting what an
//! inserted Trojan actually does cycle by cycle. It works identically
//! over the interpreter and the compiled engine.

use std::collections::HashMap;
use std::fmt::Write;

use crate::interp::SimError;
use crate::sim::Simulate;

/// Records value changes of selected signals and serializes them as VCD.
///
/// # Examples
///
/// ```
/// use noodle_verilog::{parse, Simulator, VcdRecorder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let file = parse(
///     "module counter(input clk, input rst, output reg [3:0] q);
///        always @(posedge clk) if (rst) q <= 4'd0; else q <= q + 4'd1;
///      endmodule",
/// )?;
/// let mut sim = Simulator::new(&file.modules[0])?;
/// let mut vcd = VcdRecorder::new("counter", &sim, &["clk", "rst", "q"])?;
/// sim.set("rst", 1)?;
/// sim.step("clk")?;
/// vcd.sample(&sim)?;
/// sim.set("rst", 0)?;
/// for _ in 0..3 {
///     sim.step("clk")?;
///     vcd.sample(&sim)?;
/// }
/// let dump = vcd.to_vcd();
/// assert!(dump.contains("$enddefinitions"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    scope: String,
    /// `(signal name, width, VCD identifier code)`.
    signals: Vec<(String, u32, String)>,
    /// `(time, signal index, new value)` in sampling order.
    changes: Vec<(u64, usize, u128)>,
    last: HashMap<usize, u128>,
    time: u64,
}

impl VcdRecorder {
    /// Creates a recorder for the named signals of a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if any signal does not exist in the simulator.
    pub fn new<S: Simulate + ?Sized>(
        scope: &str,
        sim: &S,
        signals: &[&str],
    ) -> Result<Self, SimError> {
        let mut recorded = Vec::with_capacity(signals.len());
        for (i, &name) in signals.iter().enumerate() {
            let width =
                sim.width(name).ok_or_else(|| SimError::new(format!("unknown signal `{name}`")))?;
            recorded.push((name.to_string(), width, id_code(i)));
        }
        Ok(Self {
            scope: scope.to_string(),
            signals: recorded,
            changes: Vec::new(),
            last: HashMap::new(),
            time: 0,
        })
    }

    /// Creates a recorder over all of the simulator's ports.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the simulator has no ports to record.
    pub fn over_ports<S: Simulate + ?Sized>(scope: &str, sim: &S) -> Result<Self, SimError> {
        let names: Vec<String> =
            sim.inputs().iter().chain(sim.outputs()).map(|(n, _)| n.clone()).collect();
        if names.is_empty() {
            return Err(SimError::new("module has no ports to record"));
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        Self::new(scope, sim, &refs)
    }

    /// Number of timesteps sampled so far.
    pub fn samples(&self) -> u64 {
        self.time
    }

    /// Samples the current simulator state as the next timestep, recording
    /// only signals whose value changed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if a recorded signal vanished (cannot happen
    /// with a simulator built from the same module).
    pub fn sample<S: Simulate + ?Sized>(&mut self, sim: &S) -> Result<(), SimError> {
        for (i, (name, _, _)) in self.signals.iter().enumerate() {
            let value =
                sim.get(name).ok_or_else(|| SimError::new(format!("unknown signal `{name}`")))?;
            if self.last.get(&i) != Some(&value) {
                self.changes.push((self.time, i, value));
                self.last.insert(i, value);
            }
        }
        self.time += 1;
        Ok(())
    }

    /// Serializes the recorded trace as VCD text.
    pub fn to_vcd(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$version noodle-verilog simulator $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", self.scope);
        for (name, width, code) in &self.signals {
            let _ = writeln!(out, "$var wire {width} {code} {name} $end");
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let mut current_time = None;
        for &(time, index, value) in &self.changes {
            if current_time != Some(time) {
                let _ = writeln!(out, "#{time}");
                current_time = Some(time);
            }
            let (_, width, code) = &self.signals[index];
            if *width == 1 {
                let _ = writeln!(out, "{}{code}", value & 1);
            } else {
                let _ = writeln!(out, "b{value:b} {code}");
            }
        }
        let _ = writeln!(out, "#{}", self.time);
        out
    }
}

/// Printable-ASCII identifier codes (`!`, `"`, …, then two characters).
fn id_code(index: usize) -> String {
    const FIRST: u8 = b'!';
    const COUNT: usize = 94; // printable ASCII except space
    let mut index = index;
    let mut code = String::new();
    loop {
        code.push((FIRST + (index % COUNT) as u8) as char);
        index /= COUNT;
        if index == 0 {
            break;
        }
        index -= 1;
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Simulator;
    use crate::parse;

    fn counter_sim() -> Simulator {
        let file = parse(
            "module m(input clk, input rst, output reg [3:0] q, output tick);
                always @(posedge clk) if (rst) q <= 4'd0; else q <= q + 4'd1;
                assign tick = q == 4'd3;
            endmodule",
        )
        .unwrap();
        Simulator::new(&file.modules[0]).unwrap()
    }

    #[test]
    fn records_counter_trace() {
        let mut sim = counter_sim();
        let mut vcd = VcdRecorder::new("m", &sim, &["clk", "q", "tick"]).unwrap();
        sim.set("rst", 1).unwrap();
        sim.step("clk").unwrap();
        vcd.sample(&sim).unwrap();
        sim.set("rst", 0).unwrap();
        for _ in 0..4 {
            sim.step("clk").unwrap();
            vcd.sample(&sim).unwrap();
        }
        let dump = vcd.to_vcd();
        assert!(dump.contains("$var wire 4 \" q $end"), "{dump}");
        assert!(dump.contains("$var wire 1 ! clk $end"), "{dump}");
        assert!(dump.contains("$enddefinitions $end"));
        // q goes 0,1,2,3,4 → binary change records for each.
        assert!(dump.contains("b0 \""), "{dump}");
        assert!(dump.contains("b11 \""), "{dump}");
        assert!(dump.contains("b100 \""), "{dump}");
        // tick pulses exactly when q == 3.
        assert!(dump.contains("1#"), "{dump}");
        assert_eq!(vcd.samples(), 5);
    }

    #[test]
    fn only_changes_are_recorded() {
        let mut sim = counter_sim();
        let mut vcd = VcdRecorder::new("m", &sim, &["rst"]).unwrap();
        sim.set("rst", 1).unwrap();
        for _ in 0..5 {
            vcd.sample(&sim).unwrap();
        }
        let dump = vcd.to_vcd();
        // rst changed once (0 at t0 would be... it was set before the first
        // sample), so exactly one change record for `!`.
        let changes = dump.lines().filter(|l| l.ends_with('!') && !l.starts_with('$')).count();
        assert_eq!(changes, 1, "{dump}");
    }

    #[test]
    fn over_ports_records_every_port() {
        let sim = counter_sim();
        let vcd = VcdRecorder::over_ports("m", &sim).unwrap();
        let dump = vcd.to_vcd();
        for name in ["clk", "rst", "q", "tick"] {
            assert!(dump.contains(&format!(" {name} $end")), "missing {name}:\n{dump}");
        }
    }

    #[test]
    fn unknown_signal_is_reported() {
        let sim = counter_sim();
        assert!(VcdRecorder::new("m", &sim, &["nope"]).is_err());
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let code = id_code(i);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)), "{code:?}");
            assert!(seen.insert(code), "duplicate at {i}");
        }
    }
}
