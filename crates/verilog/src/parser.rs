//! Recursive-descent parser for the Verilog-2001 subset.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::tokenize;
use crate::token::{Keyword, Symbol, Token, TokenKind};

/// Parses Verilog source text into a [`SourceFile`].
///
/// # Errors
///
/// Returns a [`ParseError`] with a source line for lexical errors and for
/// constructs outside the supported subset.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), noodle_verilog::ParseError> {
/// let src = "module inv(input a, output y); assign y = !a; endmodule";
/// let file = noodle_verilog::parse(src)?;
/// assert_eq!(file.modules[0].name, "inv");
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<SourceFile, ParseError> {
    let _timer = noodle_telemetry::time_histogram("verilog.parse_us");
    noodle_telemetry::counter_add("verilog.parse_calls", 1);
    let tokens = tokenize(source)?;
    Parser { tokens, pos: 0 }.parse_source_file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos.min(self.tokens.len() - 1)].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(message, self.line())
    }

    fn eat_symbol(&mut self, sym: Symbol) -> bool {
        if *self.peek() == TokenKind::Symbol(sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Symbol) -> Result<(), ParseError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{sym}`, found {}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, kw: Keyword) -> bool {
        if *self.peek() == TokenKind::Keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`, found {}", kw.as_str(), self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            TokenKind::Ident(name) => Ok(name),
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn parse_source_file(mut self) -> Result<SourceFile, ParseError> {
        let mut modules = Vec::new();
        while *self.peek() != TokenKind::Eof {
            modules.push(self.parse_module()?);
        }
        Ok(SourceFile { modules })
    }

    fn parse_module(&mut self) -> Result<Module, ParseError> {
        self.expect_keyword(Keyword::Module)?;
        let name = self.expect_ident()?;
        let mut items = Vec::new();

        // Optional parameter port list `#(parameter N = 8, ...)`.
        if self.eat_symbol(Symbol::Hash) {
            self.expect_symbol(Symbol::LParen)?;
            loop {
                let _ = self.eat_keyword(Keyword::Parameter);
                let pname = self.expect_ident()?;
                self.expect_symbol(Symbol::Assign)?;
                let value = self.parse_expr()?;
                items.push(Item::Parameter { name: pname, value });
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
        }

        let mut ports = Vec::new();
        if self.eat_symbol(Symbol::LParen) && !self.eat_symbol(Symbol::RParen) {
            ports = self.parse_port_list()?;
            self.expect_symbol(Symbol::RParen)?;
        }
        self.expect_symbol(Symbol::Semicolon)?;

        while !self.eat_keyword(Keyword::Endmodule) {
            if *self.peek() == TokenKind::Eof {
                return Err(self.error("unexpected end of input inside module body"));
            }
            items.push(self.parse_item()?);
        }
        Ok(Module { name, ports, items })
    }

    fn parse_port_list(&mut self) -> Result<Vec<Port>, ParseError> {
        let mut ports = Vec::new();
        let mut direction = PortDirection::Unspecified;
        let mut range = None;
        let mut is_reg = false;
        loop {
            let mut fresh = false;
            let next_dir = match self.peek() {
                TokenKind::Keyword(Keyword::Input) => Some(PortDirection::Input),
                TokenKind::Keyword(Keyword::Output) => Some(PortDirection::Output),
                TokenKind::Keyword(Keyword::Inout) => Some(PortDirection::Inout),
                _ => None,
            };
            if let Some(dir) = next_dir {
                self.bump();
                direction = dir;
                range = None;
                is_reg = false;
                fresh = true;
            }
            if self.eat_keyword(Keyword::Wire) {
                is_reg = false;
            } else if self.eat_keyword(Keyword::Reg) {
                is_reg = true;
            }
            let _ = self.eat_keyword(Keyword::Signed);
            if *self.peek() == TokenKind::Symbol(Symbol::LBracket) {
                range = Some(self.parse_range()?);
            } else if fresh {
                range = None;
            }
            let name = self.expect_ident()?;
            ports.push(Port { direction, name, range, is_reg });
            if !self.eat_symbol(Symbol::Comma) {
                return Ok(ports);
            }
        }
    }

    fn parse_range(&mut self) -> Result<Range, ParseError> {
        self.expect_symbol(Symbol::LBracket)?;
        let msb = self.parse_const_int()?;
        self.expect_symbol(Symbol::Colon)?;
        let lsb = self.parse_const_int()?;
        self.expect_symbol(Symbol::RBracket)?;
        Ok(Range::new(msb, lsb))
    }

    /// A constant integer expression restricted to literals and unary minus;
    /// ranges and part selects in the subset must be numeric.
    fn parse_const_int(&mut self) -> Result<i64, ParseError> {
        let neg = self.eat_symbol(Symbol::Minus);
        match self.bump() {
            TokenKind::Number(n) => {
                let v =
                    i64::try_from(n.value).map_err(|_| self.error("constant exceeds i64 range"))?;
                Ok(if neg { -v } else { v })
            }
            other => Err(self.error(format!("expected constant integer, found {other}"))),
        }
    }

    fn parse_item(&mut self) -> Result<Item, ParseError> {
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Wire) => self.parse_decl(NetType::Wire),
            TokenKind::Keyword(Keyword::Reg) => self.parse_decl(NetType::Reg),
            TokenKind::Keyword(Keyword::Integer) => self.parse_decl(NetType::Integer),
            TokenKind::Keyword(Keyword::Input) => self.parse_port_decl(PortDirection::Input),
            TokenKind::Keyword(Keyword::Output) => self.parse_port_decl(PortDirection::Output),
            TokenKind::Keyword(Keyword::Inout) => self.parse_port_decl(PortDirection::Inout),
            TokenKind::Keyword(Keyword::Parameter) => self.parse_parameter(false),
            TokenKind::Keyword(Keyword::Localparam) => self.parse_parameter(true),
            TokenKind::Keyword(Keyword::Assign) => {
                self.bump();
                let lhs = self.parse_lvalue()?;
                self.expect_symbol(Symbol::Assign)?;
                let rhs = self.parse_expr()?;
                self.expect_symbol(Symbol::Semicolon)?;
                Ok(Item::Assign { lhs, rhs })
            }
            TokenKind::Keyword(Keyword::Always) => {
                self.bump();
                self.expect_symbol(Symbol::At)?;
                let event = self.parse_event_control()?;
                let body = self.parse_stmt()?;
                Ok(Item::Always { event, body })
            }
            TokenKind::Keyword(Keyword::Initial) => {
                self.bump();
                let body = self.parse_stmt()?;
                Ok(Item::Initial { body })
            }
            TokenKind::Ident(_) => self.parse_instance(),
            other => Err(self.error(format!("unexpected {other} in module body"))),
        }
    }

    fn parse_decl(&mut self, net: NetType) -> Result<Item, ParseError> {
        self.bump();
        let _ = self.eat_keyword(Keyword::Signed);
        let range = if *self.peek() == TokenKind::Symbol(Symbol::LBracket) {
            Some(self.parse_range()?)
        } else {
            None
        };
        let mut names = vec![self.expect_ident()?];
        while self.eat_symbol(Symbol::Comma) {
            names.push(self.expect_ident()?);
        }
        self.expect_symbol(Symbol::Semicolon)?;
        Ok(Item::Decl { net, range, names })
    }

    fn parse_port_decl(&mut self, direction: PortDirection) -> Result<Item, ParseError> {
        self.bump();
        let _ = self.eat_keyword(Keyword::Wire) || self.eat_keyword(Keyword::Reg);
        let _ = self.eat_keyword(Keyword::Signed);
        let range = if *self.peek() == TokenKind::Symbol(Symbol::LBracket) {
            Some(self.parse_range()?)
        } else {
            None
        };
        let mut names = vec![self.expect_ident()?];
        while self.eat_symbol(Symbol::Comma) {
            names.push(self.expect_ident()?);
        }
        self.expect_symbol(Symbol::Semicolon)?;
        Ok(Item::PortDecl { direction, range, names })
    }

    fn parse_parameter(&mut self, local: bool) -> Result<Item, ParseError> {
        self.bump();
        let name = self.expect_ident()?;
        self.expect_symbol(Symbol::Assign)?;
        let value = self.parse_expr()?;
        self.expect_symbol(Symbol::Semicolon)?;
        Ok(if local { Item::Localparam { name, value } } else { Item::Parameter { name, value } })
    }

    fn parse_instance(&mut self) -> Result<Item, ParseError> {
        let module = self.expect_ident()?;
        // Optional parameter overrides `#( ... )` are parsed and discarded:
        // the structural features NOODLE extracts do not depend on them.
        if self.eat_symbol(Symbol::Hash) {
            self.expect_symbol(Symbol::LParen)?;
            let mut depth = 1usize;
            while depth > 0 {
                match self.bump() {
                    TokenKind::Symbol(Symbol::LParen) => depth += 1,
                    TokenKind::Symbol(Symbol::RParen) => depth -= 1,
                    TokenKind::Eof => {
                        return Err(self.error("unexpected end of input in parameter overrides"))
                    }
                    _ => {}
                }
            }
        }
        let name = self.expect_ident()?;
        self.expect_symbol(Symbol::LParen)?;
        let mut connections = Vec::new();
        if !self.eat_symbol(Symbol::RParen) {
            loop {
                if self.eat_symbol(Symbol::Dot) {
                    let port = self.expect_ident()?;
                    self.expect_symbol(Symbol::LParen)?;
                    let expr = if *self.peek() == TokenKind::Symbol(Symbol::RParen) {
                        None
                    } else {
                        Some(self.parse_expr()?)
                    };
                    self.expect_symbol(Symbol::RParen)?;
                    connections.push(Connection { port: Some(port), expr });
                } else {
                    let expr = self.parse_expr()?;
                    connections.push(Connection { port: None, expr: Some(expr) });
                }
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
        }
        self.expect_symbol(Symbol::Semicolon)?;
        Ok(Item::Instance { module, name, connections })
    }

    fn parse_event_control(&mut self) -> Result<EventControl, ParseError> {
        if self.eat_symbol(Symbol::Star) {
            return Ok(EventControl::Star);
        }
        self.expect_symbol(Symbol::LParen)?;
        if self.eat_symbol(Symbol::Star) {
            self.expect_symbol(Symbol::RParen)?;
            return Ok(EventControl::Star);
        }
        let mut events = Vec::new();
        loop {
            let edge = if self.eat_keyword(Keyword::Posedge) {
                Some(Edge::Pos)
            } else if self.eat_keyword(Keyword::Negedge) {
                Some(Edge::Neg)
            } else {
                None
            };
            let signal = self.expect_ident()?;
            events.push(EventExpr { edge, signal });
            if self.eat_keyword(Keyword::Or) || self.eat_symbol(Symbol::Comma) {
                continue;
            }
            break;
        }
        self.expect_symbol(Symbol::RParen)?;
        Ok(EventControl::Events(events))
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        // Optional delay control `#n` before a statement (testbench style).
        if self.eat_symbol(Symbol::Hash) {
            match self.bump() {
                TokenKind::Number(_) => {}
                other => return Err(self.error(format!("expected delay value, found {other}"))),
            }
        }
        match self.peek().clone() {
            TokenKind::Keyword(Keyword::Begin) => {
                self.bump();
                let label =
                    if self.eat_symbol(Symbol::Colon) { Some(self.expect_ident()?) } else { None };
                let mut stmts = Vec::new();
                while !self.eat_keyword(Keyword::End) {
                    if *self.peek() == TokenKind::Eof {
                        return Err(self.error("unexpected end of input inside begin/end"));
                    }
                    stmts.push(self.parse_stmt()?);
                }
                Ok(Stmt::Block { label, stmts })
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                self.expect_symbol(Symbol::LParen)?;
                let cond = self.parse_expr()?;
                self.expect_symbol(Symbol::RParen)?;
                let then_branch = Box::new(self.parse_stmt()?);
                let else_branch = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If { cond, then_branch, else_branch })
            }
            TokenKind::Keyword(kw @ (Keyword::Case | Keyword::Casex | Keyword::Casez)) => {
                self.bump();
                let kind = match kw {
                    Keyword::Case => CaseKind::Case,
                    Keyword::Casex => CaseKind::Casex,
                    _ => CaseKind::Casez,
                };
                self.expect_symbol(Symbol::LParen)?;
                let subject = self.parse_expr()?;
                self.expect_symbol(Symbol::RParen)?;
                let mut arms = Vec::new();
                let mut default = None;
                while !self.eat_keyword(Keyword::Endcase) {
                    if *self.peek() == TokenKind::Eof {
                        return Err(self.error("unexpected end of input inside case"));
                    }
                    if self.eat_keyword(Keyword::Default) {
                        let _ = self.eat_symbol(Symbol::Colon);
                        default = Some(Box::new(self.parse_stmt()?));
                        continue;
                    }
                    let mut labels = vec![self.parse_expr()?];
                    while self.eat_symbol(Symbol::Comma) {
                        labels.push(self.parse_expr()?);
                    }
                    self.expect_symbol(Symbol::Colon)?;
                    let body = self.parse_stmt()?;
                    arms.push(CaseArm { labels, body });
                }
                Ok(Stmt::Case { kind, subject, arms, default })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                self.expect_symbol(Symbol::LParen)?;
                let init = Box::new(self.parse_assignment_stmt(false)?);
                let cond = self.parse_expr()?;
                self.expect_symbol(Symbol::Semicolon)?;
                let step = Box::new(self.parse_assignment_no_semi()?);
                self.expect_symbol(Symbol::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                Ok(Stmt::For { init, cond, step, body })
            }
            TokenKind::Symbol(Symbol::Semicolon) => {
                self.bump();
                Ok(Stmt::Null)
            }
            TokenKind::Ident(name) if name.starts_with('$') => {
                self.bump();
                let mut args = Vec::new();
                if self.eat_symbol(Symbol::LParen) && !self.eat_symbol(Symbol::RParen) {
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.eat_symbol(Symbol::Comma) {
                            break;
                        }
                    }
                    self.expect_symbol(Symbol::RParen)?;
                }
                self.expect_symbol(Symbol::Semicolon)?;
                Ok(Stmt::SystemCall { name, args })
            }
            _ => self.parse_assignment_stmt(true),
        }
    }

    /// Parses `lhs = rhs ;` or `lhs <= rhs ;`, with the trailing semicolon.
    fn parse_assignment_stmt(&mut self, allow_nonblocking: bool) -> Result<Stmt, ParseError> {
        let stmt = self.parse_assignment_core(allow_nonblocking)?;
        self.expect_symbol(Symbol::Semicolon)?;
        Ok(stmt)
    }

    /// Parses a blocking assignment without a trailing semicolon (for-loop
    /// step position).
    fn parse_assignment_no_semi(&mut self) -> Result<Stmt, ParseError> {
        self.parse_assignment_core(false)
    }

    fn parse_assignment_core(&mut self, allow_nonblocking: bool) -> Result<Stmt, ParseError> {
        let lhs = self.parse_lvalue()?;
        match self.bump() {
            TokenKind::Symbol(Symbol::Assign) => {
                let rhs = self.parse_expr()?;
                Ok(Stmt::Blocking { lhs, rhs })
            }
            TokenKind::Symbol(Symbol::LtEq) if allow_nonblocking => {
                let rhs = self.parse_expr()?;
                Ok(Stmt::Nonblocking { lhs, rhs })
            }
            other => Err(self.error(format!("expected `=` or `<=`, found {other}"))),
        }
    }

    fn parse_lvalue(&mut self) -> Result<LValue, ParseError> {
        if self.eat_symbol(Symbol::LBrace) {
            let mut parts = vec![self.parse_lvalue()?];
            while self.eat_symbol(Symbol::Comma) {
                parts.push(self.parse_lvalue()?);
            }
            self.expect_symbol(Symbol::RBrace)?;
            return Ok(LValue::Concat(parts));
        }
        let name = self.expect_ident()?;
        if self.eat_symbol(Symbol::LBracket) {
            let first = self.parse_expr()?;
            if self.eat_symbol(Symbol::Colon) {
                let msb = expr_as_const(&first)
                    .ok_or_else(|| self.error("part-select bounds must be constant"))?;
                let lsb = self.parse_const_int()?;
                self.expect_symbol(Symbol::RBracket)?;
                return Ok(LValue::Part { name, msb, lsb });
            }
            self.expect_symbol(Symbol::RBracket)?;
            return Ok(LValue::Bit { name, index: Box::new(first) });
        }
        Ok(LValue::Ident(name))
    }

    // ---- expression parsing: precedence climbing -----------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_binary(0)?;
        if self.eat_symbol(Symbol::Question) {
            let then_expr = self.parse_expr()?;
            self.expect_symbol(Symbol::Colon)?;
            let else_expr = self.parse_expr()?;
            return Ok(Expr::ternary(cond, then_expr, else_expr));
        }
        Ok(cond)
    }

    fn parse_binary(&mut self, min_level: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, level)) = binary_op_of(self.peek()) {
            if level < min_level {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(level + 1)?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            TokenKind::Symbol(Symbol::Bang) => Some(UnaryOp::Not),
            TokenKind::Symbol(Symbol::Tilde) => Some(UnaryOp::BitNot),
            TokenKind::Symbol(Symbol::Minus) => Some(UnaryOp::Neg),
            TokenKind::Symbol(Symbol::Amp) => Some(UnaryOp::RedAnd),
            TokenKind::Symbol(Symbol::Pipe) => Some(UnaryOp::RedOr),
            TokenKind::Symbol(Symbol::Caret) => Some(UnaryOp::RedXor),
            TokenKind::Symbol(Symbol::Plus) => {
                self.bump();
                return self.parse_unary();
            }
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.parse_unary()?;
            return Ok(Expr::unary(op, operand));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            TokenKind::Number(n) => {
                Ok(Expr::Literal(Literal { width: n.width, value: n.value, base: n.base }))
            }
            TokenKind::Str(s) => Ok(Expr::Str(s)),
            TokenKind::Symbol(Symbol::LParen) => {
                let e = self.parse_expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            TokenKind::Symbol(Symbol::LBrace) => {
                // `{expr, ...}` concatenation or `{n{expr}}` replication.
                let first = self.parse_expr()?;
                if *self.peek() == TokenKind::Symbol(Symbol::LBrace) {
                    let count = expr_as_const(&first)
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| self.error("replication count must be a constant"))?;
                    self.bump();
                    let inner = self.parse_expr()?;
                    self.expect_symbol(Symbol::RBrace)?;
                    self.expect_symbol(Symbol::RBrace)?;
                    return Ok(Expr::Repeat { count, expr: Box::new(inner) });
                }
                let mut parts = vec![first];
                while self.eat_symbol(Symbol::Comma) {
                    parts.push(self.parse_expr()?);
                }
                self.expect_symbol(Symbol::RBrace)?;
                Ok(Expr::Concat(parts))
            }
            TokenKind::Ident(name) => {
                if self.eat_symbol(Symbol::LBracket) {
                    let first = self.parse_expr()?;
                    if self.eat_symbol(Symbol::Colon) {
                        let msb = expr_as_const(&first)
                            .ok_or_else(|| self.error("part-select bounds must be constant"))?;
                        let lsb = self.parse_const_int()?;
                        self.expect_symbol(Symbol::RBracket)?;
                        return Ok(Expr::Part { name, msb, lsb });
                    }
                    self.expect_symbol(Symbol::RBracket)?;
                    return Ok(Expr::Bit { name, index: Box::new(first) });
                }
                Ok(Expr::Ident(name))
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }
}

/// Interprets a literal (or negated literal) expression as a constant.
fn expr_as_const(e: &Expr) -> Option<i64> {
    match e {
        Expr::Literal(l) => i64::try_from(l.value).ok(),
        Expr::Unary { op: UnaryOp::Neg, operand } => expr_as_const(operand).map(|v| -v),
        _ => None,
    }
}

/// Precedence table (higher binds tighter), lowest first.
fn binary_op_of(kind: &TokenKind) -> Option<(BinaryOp, u8)> {
    let TokenKind::Symbol(sym) = kind else { return None };
    Some(match sym {
        Symbol::PipePipe => (BinaryOp::LogicOr, 0),
        Symbol::AmpAmp => (BinaryOp::LogicAnd, 1),
        Symbol::Pipe => (BinaryOp::BitOr, 2),
        Symbol::Caret => (BinaryOp::BitXor, 3),
        Symbol::TildeCaret => (BinaryOp::BitXnor, 3),
        Symbol::Amp => (BinaryOp::BitAnd, 4),
        Symbol::EqEq => (BinaryOp::Eq, 5),
        Symbol::BangEq => (BinaryOp::Neq, 5),
        Symbol::EqEqEq => (BinaryOp::CaseEq, 5),
        Symbol::BangEqEq => (BinaryOp::CaseNeq, 5),
        Symbol::Lt => (BinaryOp::Lt, 6),
        Symbol::LtEq => (BinaryOp::Le, 6),
        Symbol::Gt => (BinaryOp::Gt, 6),
        Symbol::GtEq => (BinaryOp::Ge, 6),
        Symbol::Shl => (BinaryOp::Shl, 7),
        Symbol::Shr => (BinaryOp::Shr, 7),
        Symbol::Plus => (BinaryOp::Add, 8),
        Symbol::Minus => (BinaryOp::Sub, 8),
        Symbol::Star => (BinaryOp::Mul, 9),
        Symbol::Slash => (BinaryOp::Div, 9),
        Symbol::Percent => (BinaryOp::Mod, 9),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ansi_module() {
        let src = "module m(input wire clk, input [7:0] d, output reg [7:0] q); endmodule";
        let file = parse(src).unwrap();
        let m = &file.modules[0];
        assert_eq!(m.name, "m");
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.ports[0].direction, PortDirection::Input);
        assert_eq!(m.ports[1].range, Some(Range::new(7, 0)));
        assert!(m.ports[2].is_reg);
        assert_eq!(m.ports[2].direction, PortDirection::Output);
    }

    #[test]
    fn parses_non_ansi_module() {
        let src = "module m(a, b, y);\ninput a, b;\noutput y;\nassign y = a & b;\nendmodule";
        let file = parse(src).unwrap();
        let resolved = file.modules[0].resolved_ports();
        assert_eq!(resolved[0].direction, PortDirection::Input);
        assert_eq!(resolved[2].direction, PortDirection::Output);
    }

    #[test]
    fn parses_always_ff() {
        let src = "module m(input clk, input rst_n, input d, output reg q);
            always @(posedge clk or negedge rst_n)
                if (!rst_n) q <= 1'b0; else q <= d;
        endmodule";
        let file = parse(src).unwrap();
        let Item::Always { event, body } = &file.modules[0].items[0] else {
            panic!("expected always block")
        };
        let EventControl::Events(events) = event else { panic!("expected event list") };
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].edge, Some(Edge::Pos));
        assert_eq!(events[1].edge, Some(Edge::Neg));
        assert!(matches!(body, Stmt::If { .. }));
    }

    #[test]
    fn parses_case_with_default() {
        let src = "module m(input [1:0] s, output reg y);
            always @* case (s)
                2'd0: y = 1'b0;
                2'd1, 2'd2: y = 1'b1;
                default: y = 1'b0;
            endcase
        endmodule";
        let file = parse(src).unwrap();
        let Item::Always { body, .. } = &file.modules[0].items[0] else { panic!() };
        let Stmt::Case { arms, default, kind, .. } = body else { panic!("expected case") };
        assert_eq!(*kind, CaseKind::Case);
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[1].labels.len(), 2);
        assert!(default.is_some());
    }

    #[test]
    fn expression_precedence() {
        let src = "module m(output y); assign y = 1 + 2 * 3; endmodule";
        let file = parse(src).unwrap();
        let Item::Assign { rhs, .. } = &file.modules[0].items[0] else { panic!() };
        let Expr::Binary { op: BinaryOp::Add, rhs: mul, .. } = rhs else {
            panic!("addition should be outermost: {rhs:?}")
        };
        assert!(matches!(**mul, Expr::Binary { op: BinaryOp::Mul, .. }));
    }

    #[test]
    fn ternary_and_relational() {
        let src =
            "module m(input [7:0] a, output [7:0] y); assign y = a > 8'd5 ? a : 8'd0; endmodule";
        let file = parse(src).unwrap();
        let Item::Assign { rhs, .. } = &file.modules[0].items[0] else { panic!() };
        assert!(matches!(rhs, Expr::Ternary { .. }));
    }

    #[test]
    fn le_in_expression_vs_nonblocking() {
        // `<=` is relational inside an expression, nonblocking in stmt head.
        let src = "module m(input clk, input [3:0] a, output reg f);
            always @(posedge clk) f <= a <= 4'd7;
        endmodule";
        let file = parse(src).unwrap();
        let Item::Always { body, .. } = &file.modules[0].items[0] else { panic!() };
        let Stmt::Nonblocking { rhs, .. } = body else { panic!("expected nonblocking") };
        assert!(matches!(rhs, Expr::Binary { op: BinaryOp::Le, .. }));
    }

    #[test]
    fn parses_instance_named_and_positional() {
        let src = "module top(input a, output y);
            wire w;
            inv u0(.a(a), .y(w));
            buf u1(w, y);
        endmodule";
        let file = parse(src).unwrap();
        let Item::Instance { module, name, connections } = &file.modules[0].items[1] else {
            panic!()
        };
        assert_eq!(module, "inv");
        assert_eq!(name, "u0");
        assert_eq!(connections[0].port.as_deref(), Some("a"));
        let Item::Instance { connections, .. } = &file.modules[0].items[2] else { panic!() };
        assert!(connections[0].port.is_none());
    }

    #[test]
    fn parses_parameter_ports_and_overrides() {
        let src = "module m #(parameter W = 8)(input [7:0] d, output [7:0] q);
            sub #(16) u0(d, q);
        endmodule";
        let file = parse(src).unwrap();
        assert!(matches!(file.modules[0].items[0], Item::Parameter { .. }));
        assert!(matches!(file.modules[0].items[1], Item::Instance { .. }));
    }

    #[test]
    fn parses_concat_repeat_parts() {
        let src = "module m(input [7:0] a, output [15:0] y);
            assign y = {a[7:4], {2{a[1:0]}}, a[3], ~a[2], 2'b01, {4{1'b0}}};
        endmodule";
        let file = parse(src).unwrap();
        let Item::Assign { rhs, .. } = &file.modules[0].items[0] else { panic!() };
        let Expr::Concat(parts) = rhs else { panic!("expected concat") };
        assert_eq!(parts.len(), 6);
        assert!(matches!(parts[1], Expr::Repeat { count: 2, .. }));
    }

    #[test]
    fn parses_for_loop_and_system_call() {
        let src = "module m; integer i; reg [7:0] mem;
            initial begin
                for (i = 0; i < 8; i = i + 1) mem[i] = 1'b0;
                $display(\"done %d\", i);
            end
        endmodule";
        let file = parse(src).unwrap();
        let Item::Initial { body } = &file.modules[0].items[2] else { panic!() };
        let Stmt::Block { stmts, .. } = body else { panic!() };
        assert!(matches!(stmts[0], Stmt::For { .. }));
        assert!(matches!(&stmts[1], Stmt::SystemCall { name, .. } if name == "$display"));
    }

    #[test]
    fn reports_line_numbers_on_error() {
        let err = parse("module m(input a);\nassign = 1;\nendmodule").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn rejects_truncated_module() {
        assert!(parse("module m(input a);").is_err());
        assert!(parse("module m(input a); assign").is_err());
    }

    #[test]
    fn parses_multiple_modules() {
        let src = "module a; endmodule\nmodule b; endmodule";
        let file = parse(src).unwrap();
        assert_eq!(file.modules.len(), 2);
        assert!(file.module("b").is_some());
        assert!(file.module("c").is_none());
    }

    #[test]
    fn parses_reduction_operators() {
        let src = "module m(input [7:0] a, output p, output z);
            assign p = ^a;
            assign z = ~(|a) & (&a || !a[0]);
        endmodule";
        let file = parse(src).unwrap();
        let Item::Assign { rhs, .. } = &file.modules[0].items[0] else { panic!() };
        assert!(matches!(rhs, Expr::Unary { op: UnaryOp::RedXor, .. }));
    }

    #[test]
    fn lvalue_concat_assignment() {
        let src = "module m(input [1:0] d, output reg c, output reg [0:0] s);
            always @* {c, s} = d + 2'b01;
        endmodule";
        let file = parse(src).unwrap();
        let Item::Always { body, .. } = &file.modules[0].items[0] else { panic!() };
        let Stmt::Blocking { lhs, .. } = body else { panic!() };
        assert_eq!(lhs.target_names(), vec!["c", "s"]);
    }
}
