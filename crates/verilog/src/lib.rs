//! # noodle-verilog
//!
//! A lexer, recursive-descent parser, AST, pretty-printer and visitor for a
//! synthesizable Verilog-2001 subset — the RTL front end of the NOODLE
//! hardware-Trojan detection pipeline.
//!
//! The supported subset covers what the TrustHub-style RTL benchmarks (and
//! the synthetic corpus in `noodle-bench-gen`) use: ANSI and non-ANSI module
//! headers, `wire`/`reg`/`integer` declarations, parameters, continuous
//! assigns, `always`/`initial` blocks with `if`/`case`/`for`, blocking and
//! nonblocking assignments, module instantiation, and the usual operator
//! zoo including reductions, concatenation and replication. Constant bit
//! ranges are required (`[7:0]`, not `[W-1:0]`).
//!
//! ## Quickstart
//!
//! ```
//! # fn main() -> Result<(), noodle_verilog::ParseError> {
//! let src = "module counter(input clk, input rst, output reg [3:0] q);
//!     always @(posedge clk)
//!         if (rst) q <= 4'd0; else q <= q + 4'd1;
//! endmodule";
//! let file = noodle_verilog::parse(src)?;
//! let counter = file.module("counter").expect("module exists");
//! assert_eq!(counter.ports.len(), 3);
//! // Print it back out — the printer emits parseable Verilog.
//! let printed = noodle_verilog::print_source(&file);
//! assert_eq!(noodle_verilog::parse(&printed)?, file);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod compile;
mod error;
mod exec;
mod interp;
mod lexer;
mod parser;
mod printer;
mod sched;
mod sim;
pub mod token;
pub mod transform;
mod vcd;
pub mod visit;

pub use ast::{
    BinaryOp, CaseArm, CaseKind, Connection, Edge, EventControl, EventExpr, Expr, Item, LValue,
    Literal, Module, NetType, Port, PortDirection, Range, SourceFile, Stmt, UnaryOp,
};
pub use compile::{compile, CompiledSim};
pub use error::ParseError;
pub use interp::{SimError, Simulator};
pub use lexer::tokenize;
pub use parser::parse;
pub use printer::{print_expr, print_module, print_source, print_stmt};
pub use sim::Simulate;
pub use vcd::VcdRecorder;
