//! The instruction-tape executor behind [`crate::CompiledSim`].
//!
//! A tape is a flat array of stack-machine opcodes produced by
//! [`crate::compile`]. Execution runs linearly over two dense value
//! regions: `stable` holds live signal state, `shadow` holds snapshot
//! state (pre-edge values during a clock step, block-entry values
//! inside a combinational `always` process). Every arithmetic step uses
//! the exact expressions of the interpreter in `interp.rs`, so the two
//! backends agree bit for bit — including panic behaviour on
//! out-of-range shifts under debug assertions.

use crate::ast::{BinaryOp, UnaryOp};
use crate::interp::{apply_binary, apply_unary, mask, SimError, MAX_LOOP_ITERATIONS};

/// One opcode of a compiled process tape.
///
/// Value operands travel on an explicit `u128` stack; `atom` operands
/// index the dense signal table fixed at compile time.
#[derive(Debug, Clone)]
pub(crate) enum Instr {
    /// Push a constant.
    Const(u128),
    /// Push the live value of an atom.
    Load(u32),
    /// Push the snapshot value of an atom.
    LoadPre(u32),
    /// `[base, idx] -> (base >> min(idx, 127)) & 1`.
    BitSel,
    /// `[base] -> mask(base >> lo, width)`.
    PartSel {
        /// Low bit of the select.
        lo: u32,
        /// Width of the select.
        width: u32,
    },
    /// Apply a unary operator at the operand's width.
    Unary(UnaryOp, u32),
    /// Apply a binary operator at the expression's width.
    Binary(BinaryOp, u32),
    /// `[cond, then, else] -> if cond != 0 { then } else { else }`.
    Select,
    /// `[acc, part] -> (acc << width) | mask(part, width)`.
    ConcatFold(u32),
    /// `[v] -> {count{mask(v, width)}}`.
    RepeatFold {
        /// Replication count.
        count: u32,
        /// Width of one replica.
        width: u32,
    },
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// `[v] -> v >> width` (concat-store residual shift).
    ShrConst(u32),
    /// Unconditional jump to an absolute tape index.
    Jump(u32),
    /// Pop a value; jump when it is zero.
    JumpIfZero(u32),
    /// Pop into a temp slot (case subjects).
    StoreTemp(u32),
    /// Pop a value; jump when it equals the temp slot.
    JumpIfEqTemp {
        /// Temp slot holding the case subject.
        temp: u32,
        /// Jump target on match.
        target: u32,
    },
    /// Pop and store to an atom's live value (masked to its width).
    Store(u32),
    /// `[value, idx]`: read-modify-write one live bit of an atom.
    StoreBit(u32),
    /// Read-modify-write a live constant part select of an atom.
    StorePart {
        /// Target atom.
        atom: u32,
        /// Low bit.
        lo: u32,
        /// Field width.
        width: u32,
    },
    /// Pop and queue a nonblocking whole-signal update (raw value).
    NbStore(u32),
    /// `[value, idx]`: queue a nonblocking single-bit update.
    NbStoreBit(u32),
    /// Queue a nonblocking part-select update.
    NbStorePart {
        /// Target atom.
        atom: u32,
        /// Low bit.
        lo: u32,
        /// Field width.
        width: u32,
    },
    /// Zero a loop iteration counter.
    LoopInit(u32),
    /// Bump a loop counter and jump back to the condition; errors past
    /// the interpreter's iteration budget.
    LoopBump {
        /// Counter slot.
        slot: u32,
        /// Loop condition tape index.
        target: u32,
    },
    /// Copy the listed atoms stable -> shadow (selective block-entry
    /// snapshot for a combinational `always` process).
    Snapshot(Box<[u32]>),
    /// Commit queued nonblocking updates to stable state, in order.
    NbFlush,
}

/// Mutable run state of a compiled simulation: the two value regions
/// plus the evaluation stack, temp slots, loop counters and the
/// nonblocking queue. All buffers are reused across calls; a warm
/// `step()` allocates nothing.
#[derive(Debug, Clone)]
pub(crate) struct Machine {
    pub stable: Vec<u128>,
    pub shadow: Vec<u128>,
    pub stack: Vec<u128>,
    pub temps: Vec<u128>,
    pub loops: Vec<usize>,
    pub nb: Vec<(u32, u128)>,
}

impl Machine {
    pub(crate) fn new(initial: Vec<u128>, temps: usize, loops: usize) -> Self {
        let shadow = vec![0; initial.len()];
        Self {
            stable: initial,
            shadow,
            stack: Vec::with_capacity(16),
            temps: vec![0; temps],
            loops: vec![0; loops],
            nb: Vec::new(),
        }
    }

    fn pop(&mut self) -> u128 {
        self.stack.pop().expect("compiled tape stack underflow")
    }

    /// The value a nonblocking read-modify-write starts from: the
    /// newest queued update for the atom, else its snapshot value.
    fn nb_current(&self, atom: u32) -> u128 {
        self.nb
            .iter()
            .rev()
            .find(|&&(a, _)| a == atom)
            .map(|&(_, v)| v)
            .unwrap_or(self.shadow[atom as usize])
    }

    /// Commits queued nonblocking updates in order, masking each to the
    /// target's width.
    pub(crate) fn flush_nb(&mut self, widths: &[u32]) {
        for i in 0..self.nb.len() {
            let (atom, value) = self.nb[i];
            self.stable[atom as usize] = mask(value, widths[atom as usize]);
        }
        self.nb.clear();
    }
}

/// Executes one tape to completion.
pub(crate) fn run_tape(tape: &[Instr], widths: &[u32], m: &mut Machine) -> Result<(), SimError> {
    let mut pc = 0usize;
    while pc < tape.len() {
        match &tape[pc] {
            Instr::Const(v) => m.stack.push(*v),
            Instr::Load(atom) => m.stack.push(m.stable[*atom as usize]),
            Instr::LoadPre(atom) => m.stack.push(m.shadow[*atom as usize]),
            Instr::BitSel => {
                let idx = m.pop() as u32;
                let base = m.pop();
                m.stack.push((base >> idx.min(127)) & 1);
            }
            Instr::PartSel { lo, width } => {
                let base = m.pop();
                m.stack.push(mask(base >> lo, *width));
            }
            Instr::Unary(op, w) => {
                let v = m.pop();
                m.stack.push(apply_unary(*op, v, *w));
            }
            Instr::Binary(op, w) => {
                let b = m.pop();
                let a = m.pop();
                m.stack.push(apply_binary(*op, a, b, *w));
            }
            Instr::Select => {
                let else_v = m.pop();
                let then_v = m.pop();
                let cond = m.pop();
                m.stack.push(if cond != 0 { then_v } else { else_v });
            }
            Instr::ConcatFold(w) => {
                let part = m.pop();
                let acc = m.pop();
                m.stack.push((acc << w) | mask(part, *w));
            }
            Instr::RepeatFold { count, width } => {
                let v = mask(m.pop(), *width);
                let mut out: u128 = 0;
                for _ in 0..*count {
                    out = (out << width) | v;
                }
                m.stack.push(out);
            }
            Instr::Dup => {
                let top = *m.stack.last().expect("compiled tape stack underflow");
                m.stack.push(top);
            }
            Instr::Pop => {
                m.pop();
            }
            Instr::ShrConst(w) => {
                let v = m.pop();
                m.stack.push(v >> w);
            }
            Instr::Jump(target) => {
                pc = *target as usize;
                continue;
            }
            Instr::JumpIfZero(target) => {
                if m.pop() == 0 {
                    pc = *target as usize;
                    continue;
                }
            }
            Instr::StoreTemp(slot) => {
                let v = m.pop();
                m.temps[*slot as usize] = v;
            }
            Instr::JumpIfEqTemp { temp, target } => {
                if m.pop() == m.temps[*temp as usize] {
                    pc = *target as usize;
                    continue;
                }
            }
            Instr::Store(atom) => {
                let v = m.pop();
                m.stable[*atom as usize] = mask(v, widths[*atom as usize]);
            }
            Instr::StoreBit(atom) => {
                let idx = m.pop() as u32;
                let value = m.pop();
                let a = *atom as usize;
                let current = m.stable[a];
                let updated = (current & !(1u128 << idx)) | ((value & 1) << idx);
                m.stable[a] = mask(updated, widths[a]);
            }
            Instr::StorePart { atom, lo, width } => {
                let value = m.pop();
                let a = *atom as usize;
                let current = m.stable[a];
                let field = mask(u128::MAX, *width) << lo;
                let updated = (current & !field) | (mask(value, *width) << lo);
                m.stable[a] = mask(updated, widths[a]);
            }
            Instr::NbStore(atom) => {
                let v = m.pop();
                m.nb.push((*atom, v));
            }
            Instr::NbStoreBit(atom) => {
                let idx = m.pop() as u32;
                let value = m.pop();
                let current = m.nb_current(*atom);
                let updated = (current & !(1u128 << idx)) | ((value & 1) << idx);
                m.nb.push((*atom, updated));
            }
            Instr::NbStorePart { atom, lo, width } => {
                let value = m.pop();
                let current = m.nb_current(*atom);
                let field = mask(u128::MAX, *width) << lo;
                let updated = (current & !field) | (mask(value, *width) << lo);
                m.nb.push((*atom, updated));
            }
            Instr::LoopInit(slot) => m.loops[*slot as usize] = 0,
            Instr::LoopBump { slot, target } => {
                let s = *slot as usize;
                m.loops[s] += 1;
                if m.loops[s] > MAX_LOOP_ITERATIONS {
                    return Err(SimError::new("for loop exceeded the iteration budget"));
                }
                pc = *target as usize;
                continue;
            }
            Instr::Snapshot(atoms) => {
                for &a in atoms.iter() {
                    m.shadow[a as usize] = m.stable[a as usize];
                }
            }
            Instr::NbFlush => m.flush_nb(widths),
        }
        pc += 1;
    }
    Ok(())
}
