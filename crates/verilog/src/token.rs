//! Token definitions for the Verilog lexer.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A lexical token with its source line (1-based) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line on which the token starts.
    pub line: usize,
}

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or escaped identifier.
    Ident(String),
    /// A reserved keyword.
    Keyword(Keyword),
    /// An integer literal, possibly sized and based (e.g. `8'hFF`).
    Number(NumberToken),
    /// A string literal (without quotes).
    Str(String),
    /// An operator or punctuation symbol.
    Symbol(Symbol),
    /// End of input.
    Eof,
}

/// A parsed integer literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumberToken {
    /// Declared bit width (`8` in `8'hFF`), if any.
    pub width: Option<u32>,
    /// The numeric value.
    pub value: u128,
    /// The base the literal was written in.
    pub base: NumberBase,
}

/// Radix of an integer literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NumberBase {
    /// Plain or `'d` decimal.
    Decimal,
    /// `'h` hexadecimal.
    Hex,
    /// `'b` binary.
    Binary,
    /// `'o` octal.
    Octal,
}

/// Reserved Verilog keywords recognized by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Integer,
    Parameter,
    Localparam,
    Assign,
    Always,
    Initial,
    Begin,
    End,
    If,
    Else,
    Case,
    Casex,
    Casez,
    Endcase,
    Default,
    For,
    While,
    Posedge,
    Negedge,
    Or,
    Signed,
}

impl Keyword {
    /// Looks up a keyword from its source spelling.
    pub fn lookup(s: &str) -> Option<Self> {
        Some(match s {
            "module" => Keyword::Module,
            "endmodule" => Keyword::Endmodule,
            "input" => Keyword::Input,
            "output" => Keyword::Output,
            "inout" => Keyword::Inout,
            "wire" => Keyword::Wire,
            "reg" => Keyword::Reg,
            "integer" => Keyword::Integer,
            "parameter" => Keyword::Parameter,
            "localparam" => Keyword::Localparam,
            "assign" => Keyword::Assign,
            "always" => Keyword::Always,
            "initial" => Keyword::Initial,
            "begin" => Keyword::Begin,
            "end" => Keyword::End,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "case" => Keyword::Case,
            "casex" => Keyword::Casex,
            "casez" => Keyword::Casez,
            "endcase" => Keyword::Endcase,
            "default" => Keyword::Default,
            "for" => Keyword::For,
            "while" => Keyword::While,
            "posedge" => Keyword::Posedge,
            "negedge" => Keyword::Negedge,
            "or" => Keyword::Or,
            "signed" => Keyword::Signed,
            _ => return None,
        })
    }

    /// The canonical source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Module => "module",
            Keyword::Endmodule => "endmodule",
            Keyword::Input => "input",
            Keyword::Output => "output",
            Keyword::Inout => "inout",
            Keyword::Wire => "wire",
            Keyword::Reg => "reg",
            Keyword::Integer => "integer",
            Keyword::Parameter => "parameter",
            Keyword::Localparam => "localparam",
            Keyword::Assign => "assign",
            Keyword::Always => "always",
            Keyword::Initial => "initial",
            Keyword::Begin => "begin",
            Keyword::End => "end",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::Case => "case",
            Keyword::Casex => "casex",
            Keyword::Casez => "casez",
            Keyword::Endcase => "endcase",
            Keyword::Default => "default",
            Keyword::For => "for",
            Keyword::While => "while",
            Keyword::Posedge => "posedge",
            Keyword::Negedge => "negedge",
            Keyword::Or => "or",
            Keyword::Signed => "signed",
        }
    }
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Symbol {
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semicolon,
    Comma,
    Colon,
    Dot,
    Hash,
    At,
    Question,
    Assign,         // =
    NonblockAssign, // <=  (context-dependent with Le; lexed as LeOrNonblock)
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    Tilde,
    Amp,
    Pipe,
    Caret,
    TildeCaret, // ~^ / ^~ xnor
    AmpAmp,
    PipePipe,
    EqEq,
    BangEq,
    EqEqEq,
    BangEqEq,
    Lt,
    LtEq, // `<=`: relational or nonblocking assignment, disambiguated by the parser
    Gt,
    GtEq,
    Shl,
    Shr,
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Symbol::LParen => "(",
            Symbol::RParen => ")",
            Symbol::LBracket => "[",
            Symbol::RBracket => "]",
            Symbol::LBrace => "{",
            Symbol::RBrace => "}",
            Symbol::Semicolon => ";",
            Symbol::Comma => ",",
            Symbol::Colon => ":",
            Symbol::Dot => ".",
            Symbol::Hash => "#",
            Symbol::At => "@",
            Symbol::Question => "?",
            Symbol::Assign => "=",
            Symbol::NonblockAssign | Symbol::LtEq => "<=",
            Symbol::Plus => "+",
            Symbol::Minus => "-",
            Symbol::Star => "*",
            Symbol::Slash => "/",
            Symbol::Percent => "%",
            Symbol::Bang => "!",
            Symbol::Tilde => "~",
            Symbol::Amp => "&",
            Symbol::Pipe => "|",
            Symbol::Caret => "^",
            Symbol::TildeCaret => "~^",
            Symbol::AmpAmp => "&&",
            Symbol::PipePipe => "||",
            Symbol::EqEq => "==",
            Symbol::BangEq => "!=",
            Symbol::EqEqEq => "===",
            Symbol::BangEqEq => "!==",
            Symbol::Lt => "<",
            Symbol::Gt => ">",
            Symbol::GtEq => ">=",
            Symbol::Shl => "<<",
            Symbol::Shr => ">>",
        };
        f.write_str(s)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(name) => write!(f, "identifier `{name}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{}`", k.as_str()),
            TokenKind::Number(n) => write!(f, "number `{}`", n.value),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Symbol(s) => write!(f, "`{s}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [Keyword::Module, Keyword::Endmodule, Keyword::Posedge, Keyword::Casez] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::lookup("notakeyword"), None);
    }

    #[test]
    fn symbol_display_nonempty() {
        assert_eq!(Symbol::Shl.to_string(), "<<");
        assert_eq!(Symbol::TildeCaret.to_string(), "~^");
    }
}
