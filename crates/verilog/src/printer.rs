//! Pretty-printer emitting parseable Verilog text from the AST.
//!
//! `parse(print(ast)) == ast` (up to non-ANSI port normalization) is
//! property-tested in the crate's integration tests; `noodle-bench-gen`
//! relies on this printer to materialize its synthetic corpus as source
//! text that then flows through the full parse → feature-extraction path.

use std::fmt::Write;

use crate::ast::*;
use crate::token::NumberBase;

/// Renders a full source file as Verilog text.
pub fn print_source(file: &SourceFile) -> String {
    let mut out = String::new();
    for (i, m) in file.modules.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_module(m));
    }
    out
}

/// Renders one module as Verilog text.
pub fn print_module(module: &Module) -> String {
    let mut p = Printer::default();
    p.module(module);
    p.out
}

/// Renders an expression as Verilog text.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(expr);
    p.out
}

/// Renders a statement as Verilog text (multi-line, unindented).
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::default();
    p.stmt(stmt);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn module(&mut self, m: &Module) {
        let mut header = format!("module {}", m.name);
        if m.ports.is_empty() {
            header.push(';');
            self.line(&header);
        } else {
            header.push('(');
            header.push_str(&m.ports.iter().map(port_text).collect::<Vec<_>>().join(", "));
            header.push_str(");");
            self.line(&header);
        }
        self.indent += 1;
        for item in &m.items {
            self.item(item);
        }
        self.indent -= 1;
        self.line("endmodule");
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Decl { net, range, names } => {
                let kw = match net {
                    NetType::Wire => "wire",
                    NetType::Reg => "reg",
                    NetType::Integer => "integer",
                };
                self.line(&format!("{kw}{} {};", range_text(range), names.join(", ")));
            }
            Item::PortDecl { direction, range, names } => {
                let kw = dir_text(*direction);
                self.line(&format!("{kw}{} {};", range_text(range), names.join(", ")));
            }
            Item::Parameter { name, value } => {
                self.line(&format!("parameter {name} = {};", print_expr(value)));
            }
            Item::Localparam { name, value } => {
                self.line(&format!("localparam {name} = {};", print_expr(value)));
            }
            Item::Assign { lhs, rhs } => {
                self.line(&format!("assign {} = {};", lvalue_text(lhs), print_expr(rhs)));
            }
            Item::Always { event, body } => {
                let ev = match event {
                    EventControl::Star => "@*".to_string(),
                    EventControl::Events(events) => {
                        let parts: Vec<String> = events
                            .iter()
                            .map(|e| match e.edge {
                                Some(Edge::Pos) => format!("posedge {}", e.signal),
                                Some(Edge::Neg) => format!("negedge {}", e.signal),
                                None => e.signal.clone(),
                            })
                            .collect();
                        format!("@({})", parts.join(" or "))
                    }
                };
                self.line(&format!("always {ev}"));
                self.indent += 1;
                self.stmt_lines(body);
                self.indent -= 1;
            }
            Item::Initial { body } => {
                self.line("initial");
                self.indent += 1;
                self.stmt_lines(body);
                self.indent -= 1;
            }
            Item::Instance { module, name, connections } => {
                let conns: Vec<String> = connections
                    .iter()
                    .map(|c| match (&c.port, &c.expr) {
                        (Some(p), Some(e)) => format!(".{p}({})", print_expr(e)),
                        (Some(p), None) => format!(".{p}()"),
                        (None, Some(e)) => print_expr(e),
                        (None, None) => String::new(),
                    })
                    .collect();
                self.line(&format!("{module} {name}({});", conns.join(", ")));
            }
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        self.stmt_lines(stmt);
    }

    fn stmt_lines(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Block { label, stmts } => {
                match label {
                    Some(l) => self.line(&format!("begin : {l}")),
                    None => self.line("begin"),
                }
                self.indent += 1;
                for s in stmts {
                    self.stmt_lines(s);
                }
                self.indent -= 1;
                self.line("end");
            }
            Stmt::If { cond, then_branch, else_branch } => {
                self.line(&format!("if ({})", print_expr(cond)));
                self.indent += 1;
                self.stmt_lines(then_branch);
                self.indent -= 1;
                if let Some(els) = else_branch {
                    self.line("else");
                    self.indent += 1;
                    self.stmt_lines(els);
                    self.indent -= 1;
                }
            }
            Stmt::Case { kind, subject, arms, default } => {
                let kw = match kind {
                    CaseKind::Case => "case",
                    CaseKind::Casex => "casex",
                    CaseKind::Casez => "casez",
                };
                self.line(&format!("{kw} ({})", print_expr(subject)));
                self.indent += 1;
                for arm in arms {
                    let labels: Vec<String> = arm.labels.iter().map(print_expr).collect();
                    self.line(&format!("{}:", labels.join(", ")));
                    self.indent += 1;
                    self.stmt_lines(&arm.body);
                    self.indent -= 1;
                }
                if let Some(d) = default {
                    self.line("default:");
                    self.indent += 1;
                    self.stmt_lines(d);
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.line("endcase");
            }
            Stmt::Blocking { lhs, rhs } => {
                self.line(&format!("{} = {};", lvalue_text(lhs), print_expr(rhs)));
            }
            Stmt::Nonblocking { lhs, rhs } => {
                self.line(&format!("{} <= {};", lvalue_text(lhs), print_expr(rhs)));
            }
            Stmt::For { init, cond, step, body } => {
                let init_text = inline_assign(init);
                let step_text = inline_assign(step);
                self.line(&format!("for ({init_text}; {}; {step_text})", print_expr(cond)));
                self.indent += 1;
                self.stmt_lines(body);
                self.indent -= 1;
            }
            Stmt::SystemCall { name, args } => {
                if args.is_empty() {
                    self.line(&format!("{name};"));
                } else {
                    let a: Vec<String> = args.iter().map(print_expr).collect();
                    self.line(&format!("{name}({});", a.join(", ")));
                }
            }
            Stmt::Null => self.line(";"),
        }
    }

    fn expr(&mut self, e: &Expr) {
        self.out.push_str(&expr_text(e));
    }
}

fn inline_assign(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Blocking { lhs, rhs } => format!("{} = {}", lvalue_text(lhs), print_expr(rhs)),
        other => print_stmt(other).trim_end().to_string(),
    }
}

fn dir_text(d: PortDirection) -> &'static str {
    match d {
        PortDirection::Input => "input",
        PortDirection::Output => "output",
        PortDirection::Inout => "inout",
        PortDirection::Unspecified => "",
    }
}

fn range_text(range: &Option<Range>) -> String {
    match range {
        Some(r) => format!(" [{}:{}]", r.msb, r.lsb),
        None => String::new(),
    }
}

fn port_text(p: &Port) -> String {
    let mut s = String::new();
    let dir = dir_text(p.direction);
    if !dir.is_empty() {
        s.push_str(dir);
        if p.is_reg {
            s.push_str(" reg");
        }
        s.push_str(&range_text(&p.range));
        s.push(' ');
    }
    s.push_str(&p.name);
    s
}

fn lvalue_text(lv: &LValue) -> String {
    match lv {
        LValue::Ident(n) => n.clone(),
        LValue::Bit { name, index } => format!("{name}[{}]", print_expr(index)),
        LValue::Part { name, msb, lsb } => format!("{name}[{msb}:{lsb}]"),
        LValue::Concat(parts) => {
            let p: Vec<String> = parts.iter().map(lvalue_text).collect();
            format!("{{{}}}", p.join(", "))
        }
    }
}

fn literal_text(l: &Literal) -> String {
    let mut s = String::new();
    if let Some(w) = l.width {
        let _ = write!(s, "{w}");
    }
    match l.base {
        NumberBase::Decimal => {
            if l.width.is_some() {
                let _ = write!(s, "'d{}", l.value);
            } else {
                let _ = write!(s, "{}", l.value);
            }
        }
        NumberBase::Hex => {
            let _ = write!(s, "'h{:x}", l.value);
        }
        NumberBase::Binary => {
            let _ = write!(s, "'b{:b}", l.value);
        }
        NumberBase::Octal => {
            let _ = write!(s, "'o{:o}", l.value);
        }
    }
    s
}

fn unary_text(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::Not => "!",
        UnaryOp::BitNot => "~",
        UnaryOp::Neg => "-",
        UnaryOp::RedAnd => "&",
        UnaryOp::RedOr => "|",
        UnaryOp::RedXor => "^",
    }
}

fn binary_text(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::LogicOr => "||",
        BinaryOp::LogicAnd => "&&",
        BinaryOp::BitOr => "|",
        BinaryOp::BitXor => "^",
        BinaryOp::BitXnor => "~^",
        BinaryOp::BitAnd => "&",
        BinaryOp::Eq => "==",
        BinaryOp::Neq => "!=",
        BinaryOp::CaseEq => "===",
        BinaryOp::CaseNeq => "!==",
        BinaryOp::Lt => "<",
        BinaryOp::Le => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::Ge => ">=",
        BinaryOp::Shl => "<<",
        BinaryOp::Shr => ">>",
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
        BinaryOp::Mod => "%",
    }
}

fn expr_text(e: &Expr) -> String {
    match e {
        Expr::Ident(n) => n.clone(),
        Expr::Literal(l) => literal_text(l),
        Expr::Str(s) => format!("{s:?}"),
        Expr::Bit { name, index } => format!("{name}[{}]", expr_text(index)),
        Expr::Part { name, msb, lsb } => format!("{name}[{msb}:{lsb}]"),
        Expr::Unary { op, operand } => format!("{}({})", unary_text(*op), expr_text(operand)),
        Expr::Binary { op, lhs, rhs } => {
            format!("({} {} {})", expr_text(lhs), binary_text(*op), expr_text(rhs))
        }
        Expr::Ternary { cond, then_expr, else_expr } => {
            format!("({} ? {} : {})", expr_text(cond), expr_text(then_expr), expr_text(else_expr))
        }
        Expr::Concat(parts) => {
            let p: Vec<String> = parts.iter().map(expr_text).collect();
            format!("{{{}}}", p.join(", "))
        }
        Expr::Repeat { count, expr } => format!("{{{count}{{{}}}}}", expr_text(expr)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn round_trip(src: &str) -> SourceFile {
        let first = parse(src).unwrap();
        let printed = print_source(&first);
        parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"))
    }

    #[test]
    fn module_round_trip_is_fixpoint() {
        let src = "module m(input clk, input [7:0] d, output reg [7:0] q);
            wire [7:0] next;
            assign next = d + 8'd1;
            always @(posedge clk) q <= next;
        endmodule";
        let first = parse(src).unwrap();
        let reparsed = round_trip(src);
        assert_eq!(first, reparsed);
    }

    #[test]
    fn case_round_trip() {
        let src = "module m(input [1:0] s, output reg y);
            always @* casez (s)
                2'b0?: y = 1'b0;
                default: y = 1'b1;
            endcase
        endmodule";
        // casez with ? wildcards isn't in the literal subset; use plain case.
        let src = src.replace("casez", "case").replace("2'b0?", "2'b00");
        let first = parse(&src).unwrap();
        assert_eq!(first, parse(&print_source(&first)).unwrap());
    }

    #[test]
    fn expr_parenthesization_preserves_shape() {
        let src = "module m(input a, input b, input c, output y);
            assign y = a & b | c;
        endmodule";
        let first = parse(src).unwrap();
        let again = parse(&print_source(&first)).unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn literal_texts() {
        assert_eq!(literal_text(&Literal::hex(8, 255)), "8'hff");
        assert_eq!(literal_text(&Literal::bin(4, 10)), "4'b1010");
        assert_eq!(literal_text(&Literal::dec(42)), "42");
        assert_eq!(
            literal_text(&Literal { width: Some(16), value: 255, base: NumberBase::Decimal }),
            "16'd255"
        );
    }

    #[test]
    fn instance_round_trip() {
        let src = "module top(input a, output y);
            wire w;
            inv u0(.a(a), .y(w));
            inv u1(w, y);
        endmodule
        module inv(input a, output y);
            assign y = ~a;
        endmodule";
        let first = parse(src).unwrap();
        assert_eq!(first, parse(&print_source(&first)).unwrap());
    }

    #[test]
    fn for_and_system_call_round_trip() {
        let src = "module m; integer i; reg [7:0] acc;
            initial begin
                acc = 8'd0;
                for (i = 0; i < 8; i = i + 1) acc = acc + 8'd1;
                $display(\"acc=%d\", acc);
            end
        endmodule";
        let first = parse(src).unwrap();
        assert_eq!(first, parse(&print_source(&first)).unwrap());
    }
}
