//! AST transformations: signal renaming and hierarchy flattening.
//!
//! [`rename_signals`] rewrites every identifier of a module through a
//! mapping function (used for prefix-renaming when inlining submodules).
//! [`flatten`] inlines a design's full instance hierarchy into one module,
//! which is what the [`crate::Simulator`] and the NOODLE feature extractors
//! operate on.

use std::collections::HashMap;

use crate::ast::*;
use crate::error::ParseError;

/// Rewrites every signal identifier in `module` (ports, declarations,
/// expressions, targets and event lists) through `rename`.
pub fn rename_signals(module: &Module, rename: &dyn Fn(&str) -> String) -> Module {
    Module {
        name: module.name.clone(),
        ports: module.ports.iter().map(|p| Port { name: rename(&p.name), ..p.clone() }).collect(),
        items: module.items.iter().map(|i| rename_item(i, rename)).collect(),
    }
}

/// Rewrites one item through `rename`.
pub fn rename_item(item: &Item, rename: &dyn Fn(&str) -> String) -> Item {
    match item {
        Item::Decl { net, range, names } => Item::Decl {
            net: *net,
            range: *range,
            names: names.iter().map(|n| rename(n)).collect(),
        },
        Item::PortDecl { direction, range, names } => Item::PortDecl {
            direction: *direction,
            range: *range,
            names: names.iter().map(|n| rename(n)).collect(),
        },
        Item::Parameter { name, value } => {
            Item::Parameter { name: rename(name), value: rename_expr(value, rename) }
        }
        Item::Localparam { name, value } => {
            Item::Localparam { name: rename(name), value: rename_expr(value, rename) }
        }
        Item::Assign { lhs, rhs } => {
            Item::Assign { lhs: rename_lvalue(lhs, rename), rhs: rename_expr(rhs, rename) }
        }
        Item::Always { event, body } => Item::Always {
            event: match event {
                EventControl::Star => EventControl::Star,
                EventControl::Events(events) => EventControl::Events(
                    events
                        .iter()
                        .map(|e| EventExpr { edge: e.edge, signal: rename(&e.signal) })
                        .collect(),
                ),
            },
            body: rename_stmt(body, rename),
        },
        Item::Initial { body } => Item::Initial { body: rename_stmt(body, rename) },
        Item::Instance { module, name, connections } => Item::Instance {
            module: module.clone(),
            name: rename(name),
            connections: connections
                .iter()
                .map(|c| Connection {
                    port: c.port.clone(),
                    expr: c.expr.as_ref().map(|e| rename_expr(e, rename)),
                })
                .collect(),
        },
    }
}

/// Rewrites one statement through `rename`.
pub fn rename_stmt(stmt: &Stmt, rename: &dyn Fn(&str) -> String) -> Stmt {
    match stmt {
        Stmt::Block { label, stmts } => Stmt::Block {
            label: label.clone(),
            stmts: stmts.iter().map(|s| rename_stmt(s, rename)).collect(),
        },
        Stmt::If { cond, then_branch, else_branch } => Stmt::If {
            cond: rename_expr(cond, rename),
            then_branch: Box::new(rename_stmt(then_branch, rename)),
            else_branch: else_branch.as_ref().map(|e| Box::new(rename_stmt(e, rename))),
        },
        Stmt::Case { kind, subject, arms, default } => Stmt::Case {
            kind: *kind,
            subject: rename_expr(subject, rename),
            arms: arms
                .iter()
                .map(|arm| CaseArm {
                    labels: arm.labels.iter().map(|l| rename_expr(l, rename)).collect(),
                    body: rename_stmt(&arm.body, rename),
                })
                .collect(),
            default: default.as_ref().map(|d| Box::new(rename_stmt(d, rename))),
        },
        Stmt::Blocking { lhs, rhs } => {
            Stmt::Blocking { lhs: rename_lvalue(lhs, rename), rhs: rename_expr(rhs, rename) }
        }
        Stmt::Nonblocking { lhs, rhs } => {
            Stmt::Nonblocking { lhs: rename_lvalue(lhs, rename), rhs: rename_expr(rhs, rename) }
        }
        Stmt::For { init, cond, step, body } => Stmt::For {
            init: Box::new(rename_stmt(init, rename)),
            cond: rename_expr(cond, rename),
            step: Box::new(rename_stmt(step, rename)),
            body: Box::new(rename_stmt(body, rename)),
        },
        Stmt::SystemCall { name, args } => Stmt::SystemCall {
            name: name.clone(),
            args: args.iter().map(|a| rename_expr(a, rename)).collect(),
        },
        Stmt::Null => Stmt::Null,
    }
}

/// Rewrites one assignment target through `rename`.
pub fn rename_lvalue(lvalue: &LValue, rename: &dyn Fn(&str) -> String) -> LValue {
    match lvalue {
        LValue::Ident(n) => LValue::Ident(rename(n)),
        LValue::Bit { name, index } => {
            LValue::Bit { name: rename(name), index: Box::new(rename_expr(index, rename)) }
        }
        LValue::Part { name, msb, lsb } => {
            LValue::Part { name: rename(name), msb: *msb, lsb: *lsb }
        }
        LValue::Concat(parts) => {
            LValue::Concat(parts.iter().map(|p| rename_lvalue(p, rename)).collect())
        }
    }
}

/// Rewrites one expression through `rename`.
pub fn rename_expr(expr: &Expr, rename: &dyn Fn(&str) -> String) -> Expr {
    match expr {
        Expr::Ident(n) => Expr::Ident(rename(n)),
        Expr::Literal(l) => Expr::Literal(*l),
        Expr::Str(s) => Expr::Str(s.clone()),
        Expr::Bit { name, index } => {
            Expr::Bit { name: rename(name), index: Box::new(rename_expr(index, rename)) }
        }
        Expr::Part { name, msb, lsb } => Expr::Part { name: rename(name), msb: *msb, lsb: *lsb },
        Expr::Unary { op, operand } => {
            Expr::Unary { op: *op, operand: Box::new(rename_expr(operand, rename)) }
        }
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(rename_expr(lhs, rename)),
            rhs: Box::new(rename_expr(rhs, rename)),
        },
        Expr::Ternary { cond, then_expr, else_expr } => Expr::Ternary {
            cond: Box::new(rename_expr(cond, rename)),
            then_expr: Box::new(rename_expr(then_expr, rename)),
            else_expr: Box::new(rename_expr(else_expr, rename)),
        },
        Expr::Concat(parts) => Expr::Concat(parts.iter().map(|p| rename_expr(p, rename)).collect()),
        Expr::Repeat { count, expr } => {
            Expr::Repeat { count: *count, expr: Box::new(rename_expr(expr, rename)) }
        }
    }
}

/// Inlines the full instance hierarchy below `top` into a single module.
///
/// Every instance `u` of a child module contributes the child's items with
/// all signals renamed to `u_<signal>`; child ports become plain net
/// declarations wired to the parent's connection expressions (`assign
/// u_<in> = <expr>;` for inputs, `assign <target> = u_<out>;` for outputs,
/// where an output must be connected to an assignable expression).
///
/// # Errors
///
/// Returns [`ParseError`] (line 0) if `top` or an instantiated module is
/// missing, the hierarchy is recursive, a connection is malformed
/// (positional count mismatch, unknown named port, output wired to a
/// non-assignable expression), or an `inout` port is encountered.
pub fn flatten(file: &SourceFile, top: &str) -> Result<Module, ParseError> {
    let index: HashMap<&str, &Module> = file.modules.iter().map(|m| (m.name.as_str(), m)).collect();
    let mut stack = Vec::new();
    flatten_module(&index, top, &mut stack)
}

fn flatten_module(
    index: &HashMap<&str, &Module>,
    name: &str,
    stack: &mut Vec<String>,
) -> Result<Module, ParseError> {
    if stack.iter().any(|s| s == name) {
        return Err(ParseError::new(format!("recursive instantiation of `{name}`"), 0));
    }
    let module =
        *index.get(name).ok_or_else(|| ParseError::new(format!("module `{name}` not found"), 0))?;
    stack.push(name.to_string());

    let mut out =
        Module { name: module.name.clone(), ports: module.ports.clone(), items: Vec::new() };
    for item in &module.items {
        let Item::Instance { module: child_name, name: inst, connections } = item else {
            out.items.push(item.clone());
            continue;
        };
        let child = flatten_module(index, child_name, stack)?;
        let prefix = format!("{inst}_");
        let rename = |n: &str| format!("{prefix}{n}");
        let child_ports = child.resolved_ports();

        // Declare the child's ports as local nets.
        for port in &child_ports {
            out.items.push(Item::Decl {
                net: if port.is_reg { NetType::Reg } else { NetType::Wire },
                range: port.range,
                names: vec![rename(&port.name)],
            });
        }
        // Inline the child body (minus its own port decls).
        for child_item in &child.items {
            if matches!(child_item, Item::PortDecl { .. }) {
                continue;
            }
            out.items.push(rename_item(child_item, &rename));
        }
        // Wire up the connections.
        let resolved: Vec<(&crate::ast::Port, &Connection)> =
            if connections.iter().all(|c| c.port.is_some()) {
                let mut pairs = Vec::new();
                for c in connections {
                    let port_name = c.port.as_deref().expect("checked above");
                    let port =
                        child_ports.iter().find(|p| p.name == port_name).ok_or_else(|| {
                            ParseError::new(format!("`{child_name}` has no port `{port_name}`"), 0)
                        })?;
                    pairs.push((port, c));
                }
                pairs
            } else {
                if connections.len() != child_ports.len() {
                    return Err(ParseError::new(
                        format!(
                            "instance `{inst}` connects {} ports but `{child_name}` has {}",
                            connections.len(),
                            child_ports.len()
                        ),
                        0,
                    ));
                }
                child_ports.iter().zip(connections).collect()
            };
        for (port, connection) in resolved {
            let Some(expr) = &connection.expr else { continue };
            match port.direction {
                PortDirection::Input => out.items.push(Item::Assign {
                    lhs: LValue::Ident(rename(&port.name)),
                    rhs: expr.clone(),
                }),
                PortDirection::Output => {
                    let lhs = expr_as_lvalue(expr).ok_or_else(|| {
                        ParseError::new(
                            format!(
                                "output `{}` of `{inst}` is wired to a non-assignable expression",
                                port.name
                            ),
                            0,
                        )
                    })?;
                    out.items.push(Item::Assign { lhs, rhs: Expr::Ident(rename(&port.name)) });
                }
                PortDirection::Inout | PortDirection::Unspecified => {
                    return Err(ParseError::new(
                        format!("unsupported port direction on `{}`", port.name),
                        0,
                    ))
                }
            }
        }
    }
    stack.pop();
    Ok(out)
}

fn expr_as_lvalue(expr: &Expr) -> Option<LValue> {
    match expr {
        Expr::Ident(n) => Some(LValue::Ident(n.clone())),
        Expr::Bit { name, index } => Some(LValue::Bit { name: name.clone(), index: index.clone() }),
        Expr::Part { name, msb, lsb } => {
            Some(LValue::Part { name: name.clone(), msb: *msb, lsb: *lsb })
        }
        Expr::Concat(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                out.push(expr_as_lvalue(p)?);
            }
            Some(LValue::Concat(out))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Simulator;
    use crate::{parse, print_module};

    const HIERARCHICAL: &str = "
        module top(input a, input b, output y, output z);
            wire n1;
            inv u0(.a(a), .y(n1));
            andgate u1(n1, b, y);
            inv u2(.a(y), .y(z));
        endmodule
        module inv(input a, output y);
            assign y = !a;
        endmodule
        module andgate(input p, input q, output r);
            assign r = p & q;
        endmodule";

    #[test]
    fn flatten_removes_instances_and_parses() {
        let file = parse(HIERARCHICAL).unwrap();
        let flat = flatten(&file, "top").unwrap();
        assert!(
            !flat.items.iter().any(|i| matches!(i, Item::Instance { .. })),
            "instances must be inlined"
        );
        let printed = print_module(&flat);
        assert!(parse(&printed).is_ok(), "flattened module must parse:\n{printed}");
    }

    #[test]
    fn flattened_hierarchy_simulates_correctly() {
        let file = parse(HIERARCHICAL).unwrap();
        let flat = flatten(&file, "top").unwrap();
        let mut sim = Simulator::new(&flat).unwrap();
        // y = !a & b ; z = !y
        for (a, b) in [(0u128, 0u128), (0, 1), (1, 0), (1, 1)] {
            sim.set("a", a).unwrap();
            sim.set("b", b).unwrap();
            let expected_y = ((a == 0) && (b == 1)) as u128;
            assert_eq!(sim.get("y"), Some(expected_y), "a={a} b={b}");
            assert_eq!(sim.get("z"), Some(1 - expected_y));
        }
    }

    #[test]
    fn positional_and_named_connections_agree() {
        let file = parse(HIERARCHICAL).unwrap();
        let flat = flatten(&file, "top").unwrap();
        // u1 was positional: its inputs p/q must be driven.
        let text = print_module(&flat);
        assert!(text.contains("assign u1_p = n1;"), "{text}");
        assert!(text.contains("assign u1_q = b;"), "{text}");
        assert!(text.contains("assign y = u1_r;"), "{text}");
    }

    #[test]
    fn nested_hierarchy_flattens() {
        let src = "
            module top(input x, output y);
                mid m0(.i(x), .o(y));
            endmodule
            module mid(input i, output o);
                inv v0(.a(i), .y(o));
            endmodule
            module inv(input a, output y);
                assign y = !a;
            endmodule";
        let file = parse(src).unwrap();
        let flat = flatten(&file, "top").unwrap();
        let mut sim = Simulator::new(&flat).unwrap();
        sim.set("x", 0).unwrap();
        assert_eq!(sim.get("y"), Some(1));
        // The inner instance's signals carry both prefixes.
        assert!(print_module(&flat).contains("m0_v0_a"));
    }

    #[test]
    fn missing_module_and_recursion_are_reported() {
        let file = parse("module top(input a); ghost u0(.x(a)); endmodule").unwrap();
        assert!(flatten(&file, "top").is_err());
        assert!(flatten(&file, "nonexistent").is_err());
        let rec = parse("module a(input x); a u0(.x(x)); endmodule").unwrap();
        assert!(flatten(&rec, "a").is_err());
    }

    #[test]
    fn bad_connections_are_reported() {
        let file = parse(
            "module top(input a, output y);
                inv u0(.nope(a), .y(y));
            endmodule
            module inv(input a, output y); assign y = !a; endmodule",
        )
        .unwrap();
        assert!(flatten(&file, "top").is_err());

        let arity = parse(
            "module top(input a, output y);
                inv u0(a);
            endmodule
            module inv(input a, output y); assign y = !a; endmodule",
        )
        .unwrap();
        assert!(flatten(&arity, "top").is_err());

        let bad_out = parse(
            "module top(input a, output y);
                inv u0(.a(a), .y(y & a));
            endmodule
            module inv(input a, output y); assign y = !a; endmodule",
        )
        .unwrap();
        assert!(flatten(&bad_out, "top").is_err());
    }

    #[test]
    fn rename_signals_covers_everything() {
        let file = parse(
            "module m(input clk, input [3:0] d, output reg [3:0] q);
                always @(posedge clk) q <= d + 4'd1;
            endmodule",
        )
        .unwrap();
        let renamed = rename_signals(&file.modules[0], &|n| format!("x_{n}"));
        let text = print_module(&renamed);
        assert!(text.contains("x_clk"));
        assert!(text.contains("x_d"));
        assert!(text.contains("x_q"));
        assert!(!text.contains("posedge clk"), "event list must be renamed: {text}");
    }
}
