//! A cycle-accurate interpreter for the supported Verilog subset.
//!
//! The simulator evaluates a single flattened module (no instances) with
//! two-state semantics (no `x`/`z`): continuous assigns and combinational
//! `always` blocks are propagated to a fixpoint, clocked `always` blocks
//! fire on explicit [`Simulator::step`] calls with nonblocking semantics
//! (right-hand sides read pre-edge state, updates commit together).
//!
//! Width semantics are deliberately simplified relative to the LRM:
//! expressions are computed in 128-bit arithmetic and truncated to the
//! target width at assignment. For the structured RTL the corpus generator
//! emits (consistent widths, no implicit extension tricks) this matches
//! event-driven simulators bit for bit.
//!
//! The NOODLE test-suite uses the simulator to *functionally* validate
//! Trojan insertion: an infected design must behave identically to its
//! benign original until the trigger condition is met, and must deviate
//! once it fires.

use std::collections::HashMap;
use std::fmt;

use crate::ast::*;

/// An error produced while building or running a [`Simulator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    message: String,
}

impl SimError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.message)
    }
}

impl std::error::Error for SimError {}

const MAX_SETTLE_ITERATIONS: usize = 200;
const MAX_LOOP_ITERATIONS: usize = 100_000;

/// A two-state interpreter for one module.
///
/// # Examples
///
/// ```
/// use noodle_verilog::{parse, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let file = parse(
///     "module counter(input clk, input rst, output reg [3:0] q);
///        always @(posedge clk) if (rst) q <= 4'd0; else q <= q + 4'd1;
///      endmodule",
/// )?;
/// let mut sim = Simulator::new(&file.modules[0])?;
/// sim.set("rst", 1)?;
/// sim.step("clk")?;
/// sim.set("rst", 0)?;
/// for _ in 0..5 {
///     sim.step("clk")?;
/// }
/// assert_eq!(sim.get("q"), Some(5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    values: HashMap<String, u128>,
    widths: HashMap<String, u32>,
    inputs: Vec<(String, u32)>,
    outputs: Vec<(String, u32)>,
    comb: Vec<CombProcess>,
    clocked: Vec<ClockedProcess>,
    initials: Vec<Stmt>,
    initialized: bool,
}

#[derive(Debug, Clone)]
enum CombProcess {
    Assign { lhs: LValue, rhs: Expr },
    Always { body: Stmt },
}

#[derive(Debug, Clone)]
struct ClockedProcess {
    events: Vec<EventExpr>,
    body: Stmt,
}

impl Simulator {
    /// Builds a simulator for a flattened module.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the module instantiates submodules (flatten
    /// first) or uses constructs outside the supported subset.
    pub fn new(module: &Module) -> Result<Self, SimError> {
        let mut sim = Self {
            values: HashMap::new(),
            widths: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            comb: Vec::new(),
            clocked: Vec::new(),
            initials: Vec::new(),
            initialized: false,
        };
        for port in module.resolved_ports() {
            let width = port.range.map(|r| r.width() as u32).unwrap_or(1);
            sim.declare(&port.name, width);
            match port.direction {
                PortDirection::Input => sim.inputs.push((port.name.clone(), width)),
                PortDirection::Output => sim.outputs.push((port.name.clone(), width)),
                _ => {}
            }
        }
        for item in &module.items {
            match item {
                Item::Decl { range, names, .. } => {
                    let width = range.map(|r| r.width() as u32).unwrap_or(32);
                    for name in names {
                        sim.declare(name, width);
                    }
                }
                Item::PortDecl { .. } => {}
                Item::Parameter { name, value } | Item::Localparam { name, value } => {
                    sim.declare(name, 32);
                    let v = sim.eval(value)?;
                    sim.values.insert(name.clone(), v);
                }
                Item::Assign { lhs, rhs } => {
                    sim.comb.push(CombProcess::Assign { lhs: lhs.clone(), rhs: rhs.clone() });
                }
                Item::Always { event, body } => match event {
                    EventControl::Star => sim.comb.push(CombProcess::Always { body: body.clone() }),
                    EventControl::Events(events) => {
                        if events.iter().any(|e| e.edge.is_some()) {
                            sim.clocked.push(ClockedProcess {
                                events: events.clone(),
                                body: body.clone(),
                            });
                        } else {
                            sim.comb.push(CombProcess::Always { body: body.clone() });
                        }
                    }
                },
                Item::Initial { body } => sim.initials.push(body.clone()),
                Item::Instance { .. } => {
                    return Err(SimError::new(
                        "module instances are not supported; flatten the design first",
                    ))
                }
            }
        }
        Ok(sim)
    }

    fn declare(&mut self, name: &str, width: u32) {
        self.widths.insert(name.to_string(), width.min(128));
        self.values.entry(name.to_string()).or_insert(0);
    }

    fn ensure_initialized(&mut self) -> Result<(), SimError> {
        if self.initialized {
            return Ok(());
        }
        self.initialized = true;
        let initials = std::mem::take(&mut self.initials);
        for body in &initials {
            let mut nb = Vec::new();
            self.exec(body, &mut nb, &self.values.clone())?;
            for (name, value) in nb {
                self.store(&name, value);
            }
        }
        self.initials = initials;
        self.settle()
    }

    /// Sets an input (or any signal) to `value`, truncated to its width,
    /// and re-settles combinational logic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the signal does not exist or settling fails.
    pub fn set(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        self.ensure_initialized()?;
        if !self.values.contains_key(name) {
            return Err(SimError::new(format!("unknown signal `{name}`")));
        }
        self.store(name, value);
        self.settle()
    }

    /// Current value of a signal, if it exists.
    pub fn get(&self, name: &str) -> Option<u128> {
        self.values.get(name).copied()
    }

    /// Width in bits of a signal, if it exists.
    pub fn width(&self, name: &str) -> Option<u32> {
        self.widths.get(name).copied()
    }

    /// The module's input ports as `(name, width)` pairs, in declaration
    /// order.
    pub fn inputs(&self) -> &[(String, u32)] {
        &self.inputs
    }

    /// The module's output ports as `(name, width)` pairs, in declaration
    /// order.
    pub fn outputs(&self) -> &[(String, u32)] {
        &self.outputs
    }

    /// Performs one positive clock edge on `clock`: every clocked process
    /// sensitive to `posedge clock` fires with nonblocking semantics, then
    /// combinational logic re-settles.
    ///
    /// Processes with additional `negedge rst`-style events fire on the
    /// clock edge here; asynchronous resets can be exercised by setting the
    /// reset signal and calling [`Simulator::async_reset`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on evaluation failure or a combinational loop.
    pub fn step(&mut self, clock: &str) -> Result<(), SimError> {
        self.ensure_initialized()?;
        let pre = self.values.clone();
        let mut updates: Vec<(String, u128)> = Vec::new();
        let processes = self.clocked.clone();
        for process in &processes {
            let sensitive = process.events.iter().any(|e| e.signal == clock);
            if !sensitive {
                continue;
            }
            self.exec(&process.body, &mut updates, &pre)?;
        }
        for (name, value) in updates {
            self.store(&name, value);
        }
        self.settle()
    }

    /// Fires every clocked process sensitive to an edge on `signal`
    /// (asynchronous set/reset modelling).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on evaluation failure or a combinational loop.
    pub fn async_reset(&mut self, signal: &str) -> Result<(), SimError> {
        self.step(signal)
    }

    /// Runs `cycles` clock cycles.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] under the same conditions as
    /// [`Simulator::step`].
    pub fn run(&mut self, clock: &str, cycles: usize) -> Result<(), SimError> {
        for _ in 0..cycles {
            self.step(clock)?;
        }
        Ok(())
    }

    /// Propagates combinational logic to a fixpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the logic does not stabilize within the
    /// iteration budget (a combinational loop).
    pub fn settle(&mut self) -> Result<(), SimError> {
        for _ in 0..MAX_SETTLE_ITERATIONS {
            let before = self.values.clone();
            let processes = self.comb.clone();
            for process in &processes {
                match process {
                    CombProcess::Assign { lhs, rhs } => {
                        let value = self.eval(rhs)?;
                        self.assign_lvalue(lhs, value)?;
                    }
                    CombProcess::Always { body } => {
                        // Blocking semantics: updates apply immediately.
                        let mut nb = Vec::new();
                        let snapshot = self.values.clone();
                        self.exec(body, &mut nb, &snapshot)?;
                        for (name, value) in nb {
                            self.store(&name, value);
                        }
                    }
                }
            }
            if self.values == before {
                return Ok(());
            }
        }
        Err(SimError::new("combinational logic did not settle (loop?)"))
    }

    fn store(&mut self, name: &str, value: u128) {
        let width = self.widths.get(name).copied().unwrap_or(128);
        self.values.insert(name.to_string(), mask(value, width));
    }

    /// Executes a statement. Nonblocking assignments evaluate against
    /// `pre` and are queued in `nb`; blocking assignments apply
    /// immediately.
    fn exec(
        &mut self,
        stmt: &Stmt,
        nb: &mut Vec<(String, u128)>,
        pre: &HashMap<String, u128>,
    ) -> Result<(), SimError> {
        match stmt {
            Stmt::Block { stmts, .. } => {
                for s in stmts {
                    self.exec(s, nb, pre)?;
                }
                Ok(())
            }
            Stmt::If { cond, then_branch, else_branch } => {
                if self.eval_with(cond, pre)? != 0 {
                    self.exec(then_branch, nb, pre)
                } else if let Some(els) = else_branch {
                    self.exec(els, nb, pre)
                } else {
                    Ok(())
                }
            }
            Stmt::Case { subject, arms, default, .. } => {
                let subject_value = self.eval_with(subject, pre)?;
                for arm in arms {
                    for label in &arm.labels {
                        if self.eval_with(label, pre)? == subject_value {
                            return self.exec(&arm.body, nb, pre);
                        }
                    }
                }
                if let Some(d) = default {
                    self.exec(d, nb, pre)?;
                }
                Ok(())
            }
            Stmt::Blocking { lhs, rhs } => {
                let value = self.eval(rhs)?;
                self.assign_lvalue(lhs, value)
            }
            Stmt::Nonblocking { lhs, rhs } => {
                let value = self.eval_with(rhs, pre)?;
                match lhs {
                    LValue::Ident(name) => {
                        nb.push((name.clone(), value));
                        Ok(())
                    }
                    LValue::Bit { name, index } => {
                        let idx = self.eval_with(index, pre)? as u32;
                        let current =
                            nb.iter().rev().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(
                                *pre.get(name).ok_or_else(|| {
                                    SimError::new(format!("unknown signal `{name}`"))
                                })?,
                            );
                        let updated = (current & !(1u128 << idx)) | ((value & 1) << idx);
                        nb.push((name.clone(), updated));
                        Ok(())
                    }
                    LValue::Part { name, msb, lsb } => {
                        let (hi, lo) = (*msb.max(lsb) as u32, *msb.min(lsb) as u32);
                        let field = hi - lo + 1;
                        let current =
                            nb.iter().rev().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(
                                *pre.get(name).ok_or_else(|| {
                                    SimError::new(format!("unknown signal `{name}`"))
                                })?,
                            );
                        let m = mask(u128::MAX, field) << lo;
                        let updated = (current & !m) | ((mask(value, field)) << lo);
                        nb.push((name.clone(), updated));
                        Ok(())
                    }
                    LValue::Concat(_) => {
                        Err(SimError::new("nonblocking concatenation targets are not supported"))
                    }
                }
            }
            Stmt::For { init, cond, step, body } => {
                self.exec(init, nb, pre)?;
                let mut iterations = 0;
                while self.eval(cond)? != 0 {
                    self.exec(body, nb, pre)?;
                    self.exec(step, nb, pre)?;
                    iterations += 1;
                    if iterations > MAX_LOOP_ITERATIONS {
                        return Err(SimError::new("for loop exceeded the iteration budget"));
                    }
                }
                Ok(())
            }
            Stmt::SystemCall { .. } | Stmt::Null => Ok(()),
        }
    }

    fn assign_lvalue(&mut self, lhs: &LValue, value: u128) -> Result<(), SimError> {
        match lhs {
            LValue::Ident(name) => {
                if !self.values.contains_key(name) {
                    self.declare(name, 1);
                }
                self.store(name, value);
                Ok(())
            }
            LValue::Bit { name, index } => {
                let idx = self.eval(index)? as u32;
                let current = self
                    .values
                    .get(name)
                    .copied()
                    .ok_or_else(|| SimError::new(format!("unknown signal `{name}`")))?;
                let updated = (current & !(1u128 << idx)) | ((value & 1) << idx);
                self.store(name, updated);
                Ok(())
            }
            LValue::Part { name, msb, lsb } => {
                let (hi, lo) = (*msb.max(lsb) as u32, *msb.min(lsb) as u32);
                let field = hi - lo + 1;
                let current = self
                    .values
                    .get(name)
                    .copied()
                    .ok_or_else(|| SimError::new(format!("unknown signal `{name}`")))?;
                let m = mask(u128::MAX, field) << lo;
                let updated = (current & !m) | (mask(value, field) << lo);
                self.store(name, updated);
                Ok(())
            }
            LValue::Concat(parts) => {
                // Assign from MSB part to LSB part.
                let mut remaining = value;
                for part in parts.iter().rev() {
                    let width = self.lvalue_width(part)?;
                    self.assign_lvalue(part, mask(remaining, width))?;
                    remaining >>= width;
                }
                Ok(())
            }
        }
    }

    fn lvalue_width(&self, lhs: &LValue) -> Result<u32, SimError> {
        match lhs {
            LValue::Ident(name) => self
                .widths
                .get(name)
                .copied()
                .ok_or_else(|| SimError::new(format!("unknown signal `{name}`"))),
            LValue::Bit { .. } => Ok(1),
            LValue::Part { msb, lsb, .. } => Ok(msb.abs_diff(*lsb) as u32 + 1),
            LValue::Concat(parts) => {
                let mut total = 0;
                for p in parts {
                    total += self.lvalue_width(p)?;
                }
                Ok(total)
            }
        }
    }

    fn eval(&self, expr: &Expr) -> Result<u128, SimError> {
        self.eval_with(expr, &self.values)
    }

    fn eval_with(&self, expr: &Expr, env: &HashMap<String, u128>) -> Result<u128, SimError> {
        Ok(match expr {
            Expr::Ident(name) => *env
                .get(name)
                .or_else(|| self.values.get(name))
                .ok_or_else(|| SimError::new(format!("unknown signal `{name}`")))?,
            Expr::Literal(l) => match l.width {
                Some(w) => mask(l.value, w),
                None => l.value,
            },
            Expr::Str(_) => 0,
            Expr::Bit { name, index } => {
                let base = *env
                    .get(name)
                    .or_else(|| self.values.get(name))
                    .ok_or_else(|| SimError::new(format!("unknown signal `{name}`")))?;
                let idx = self.eval_with(index, env)? as u32;
                (base >> idx.min(127)) & 1
            }
            Expr::Part { name, msb, lsb } => {
                let base = *env
                    .get(name)
                    .or_else(|| self.values.get(name))
                    .ok_or_else(|| SimError::new(format!("unknown signal `{name}`")))?;
                let (hi, lo) = (*msb.max(lsb) as u32, *msb.min(lsb) as u32);
                mask(base >> lo, hi - lo + 1)
            }
            Expr::Unary { op, operand } => {
                let v = self.eval_with(operand, env)?;
                let w = self.expr_width(operand)?;
                match op {
                    UnaryOp::Not => (v == 0) as u128,
                    UnaryOp::BitNot => mask(!v, w),
                    UnaryOp::Neg => mask(v.wrapping_neg(), w.max(1)),
                    UnaryOp::RedAnd => (v == mask(u128::MAX, w)) as u128,
                    UnaryOp::RedOr => (v != 0) as u128,
                    UnaryOp::RedXor => (v.count_ones() % 2) as u128,
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval_with(lhs, env)?;
                let b = self.eval_with(rhs, env)?;
                let w = self.expr_width(expr)?;
                match op {
                    BinaryOp::LogicOr => ((a != 0) || (b != 0)) as u128,
                    BinaryOp::LogicAnd => ((a != 0) && (b != 0)) as u128,
                    BinaryOp::BitOr => mask(a | b, w),
                    BinaryOp::BitXor => mask(a ^ b, w),
                    BinaryOp::BitXnor => mask(!(a ^ b), w),
                    BinaryOp::BitAnd => mask(a & b, w),
                    BinaryOp::Eq | BinaryOp::CaseEq => (a == b) as u128,
                    BinaryOp::Neq | BinaryOp::CaseNeq => (a != b) as u128,
                    BinaryOp::Lt => (a < b) as u128,
                    BinaryOp::Le => (a <= b) as u128,
                    BinaryOp::Gt => (a > b) as u128,
                    BinaryOp::Ge => (a >= b) as u128,
                    BinaryOp::Shl => mask(a.checked_shl(b.min(127) as u32).unwrap_or(0), w),
                    BinaryOp::Shr => a.checked_shr(b.min(127) as u32).unwrap_or(0),
                    BinaryOp::Add => mask(a.wrapping_add(b), w),
                    BinaryOp::Sub => mask(a.wrapping_sub(b), w),
                    BinaryOp::Mul => mask(a.wrapping_mul(b), w),
                    BinaryOp::Div => a.checked_div(b).unwrap_or(0),
                    BinaryOp::Mod => a.checked_rem(b).unwrap_or(0),
                }
            }
            Expr::Ternary { cond, then_expr, else_expr } => {
                if self.eval_with(cond, env)? != 0 {
                    self.eval_with(then_expr, env)?
                } else {
                    self.eval_with(else_expr, env)?
                }
            }
            Expr::Concat(parts) => {
                let mut out: u128 = 0;
                for part in parts {
                    let w = self.expr_width(part)?;
                    out = (out << w) | mask(self.eval_with(part, env)?, w);
                }
                out
            }
            Expr::Repeat { count, expr } => {
                let w = self.expr_width(expr)?;
                let v = mask(self.eval_with(expr, env)?, w);
                let mut out: u128 = 0;
                for _ in 0..*count {
                    out = (out << w) | v;
                }
                out
            }
        })
    }

    /// Self-determined bit width of an expression (simplified LRM rules).
    fn expr_width(&self, expr: &Expr) -> Result<u32, SimError> {
        Ok(match expr {
            Expr::Ident(name) => self.widths.get(name).copied().unwrap_or(32),
            Expr::Literal(l) => l.width.unwrap_or(32),
            Expr::Str(_) => 0,
            Expr::Bit { .. } => 1,
            Expr::Part { msb, lsb, .. } => msb.abs_diff(*lsb) as u32 + 1,
            Expr::Unary { op, operand } => match op {
                UnaryOp::Not | UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor => 1,
                _ => self.expr_width(operand)?,
            },
            Expr::Binary { op, lhs, rhs } => match op {
                BinaryOp::LogicOr
                | BinaryOp::LogicAnd
                | BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::CaseEq
                | BinaryOp::CaseNeq
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge => 1,
                _ => self.expr_width(lhs)?.max(self.expr_width(rhs)?),
            },
            Expr::Ternary { then_expr, else_expr, .. } => {
                self.expr_width(then_expr)?.max(self.expr_width(else_expr)?)
            }
            Expr::Concat(parts) => {
                let mut total = 0;
                for p in parts {
                    total += self.expr_width(p)?;
                }
                total
            }
            Expr::Repeat { count, expr } => count * self.expr_width(expr)?,
        })
    }
}

fn mask(value: u128, width: u32) -> u128 {
    if width >= 128 {
        value
    } else {
        value & ((1u128 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn sim_of(src: &str) -> Simulator {
        let file = parse(src).unwrap();
        Simulator::new(&file.modules[0]).unwrap()
    }

    #[test]
    fn combinational_gates() {
        let mut sim = sim_of(
            "module m(input a, input b, output y, output z);
                assign y = a & b;
                assign z = a ^ b;
            endmodule",
        );
        sim.set("a", 1).unwrap();
        sim.set("b", 1).unwrap();
        assert_eq!(sim.get("y"), Some(1));
        assert_eq!(sim.get("z"), Some(0));
        sim.set("b", 0).unwrap();
        assert_eq!(sim.get("y"), Some(0));
        assert_eq!(sim.get("z"), Some(1));
    }

    #[test]
    fn counter_counts_and_wraps() {
        let mut sim = sim_of(
            "module m(input clk, input rst, output reg [1:0] q);
                always @(posedge clk) if (rst) q <= 2'd0; else q <= q + 2'd1;
            endmodule",
        );
        sim.set("rst", 1).unwrap();
        sim.step("clk").unwrap();
        sim.set("rst", 0).unwrap();
        for expected in [1u128, 2, 3, 0, 1] {
            sim.step("clk").unwrap();
            assert_eq!(sim.get("q"), Some(expected));
        }
    }

    #[test]
    fn nonblocking_swap() {
        // The classic register swap only works with nonblocking semantics.
        let mut sim = sim_of(
            "module m(input clk, output reg a, output reg b);
                initial begin a = 1'b1; b = 1'b0; end
                always @(posedge clk) a <= b;
                always @(posedge clk) b <= a;
            endmodule",
        );
        sim.set("clk", 0).unwrap(); // force initialization
        assert_eq!(sim.get("a"), Some(1));
        assert_eq!(sim.get("b"), Some(0));
        sim.step("clk").unwrap();
        assert_eq!(sim.get("a"), Some(0));
        assert_eq!(sim.get("b"), Some(1));
    }

    #[test]
    fn comb_always_with_case() {
        let mut sim = sim_of(
            "module m(input [1:0] s, output reg [3:0] y);
                always @* case (s)
                    2'd0: y = 4'd1;
                    2'd1: y = 4'd2;
                    2'd2: y = 4'd4;
                    default: y = 4'd8;
                endcase
            endmodule",
        );
        for (s, y) in [(0u128, 1u128), (1, 2), (2, 4), (3, 8)] {
            sim.set("s", s).unwrap();
            assert_eq!(sim.get("y"), Some(y), "s = {s}");
        }
    }

    #[test]
    fn part_select_and_concat() {
        let mut sim = sim_of(
            "module m(input [7:0] d, output [7:0] y, output [3:0] hi);
                assign y = {d[3:0], d[7:4]};
                assign hi = d[7:4];
            endmodule",
        );
        sim.set("d", 0xA5).unwrap();
        assert_eq!(sim.get("y"), Some(0x5A));
        assert_eq!(sim.get("hi"), Some(0xA));
    }

    #[test]
    fn replication_and_reductions() {
        let mut sim = sim_of(
            "module m(input [3:0] d, output [7:0] y, output p, output all);
                assign y = {2{d}};
                assign p = ^d;
                assign all = &d;
            endmodule",
        );
        sim.set("d", 0b1010).unwrap();
        assert_eq!(sim.get("y"), Some(0b1010_1010));
        assert_eq!(sim.get("p"), Some(0));
        assert_eq!(sim.get("all"), Some(0));
        sim.set("d", 0b1111).unwrap();
        assert_eq!(sim.get("all"), Some(1));
    }

    #[test]
    fn chained_comb_settles() {
        let mut sim = sim_of(
            "module m(input a, output y);
                wire t1, t2;
                assign t2 = ~t1;
                assign t1 = ~a;
                assign y = ~t2;
            endmodule",
        );
        sim.set("a", 1).unwrap();
        assert_eq!(sim.get("y"), Some(0));
    }

    #[test]
    fn combinational_loop_detected() {
        // A ring oscillator has no stable point and must be reported.
        let file = parse(
            "module m(output y);
                wire a;
                assign a = ~a;
                assign y = a;
            endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&file.modules[0]).unwrap();
        assert!(sim.settle().is_err());
    }

    #[test]
    fn arithmetic_truncates_to_width() {
        let mut sim = sim_of(
            "module m(input [3:0] a, input [3:0] b, output [3:0] s);
                assign s = a + b;
            endmodule",
        );
        sim.set("a", 12).unwrap();
        sim.set("b", 7).unwrap();
        assert_eq!(sim.get("s"), Some(3)); // 19 mod 16
    }

    #[test]
    fn for_loop_in_initial() {
        let mut sim = sim_of(
            "module m(input clk, output reg [7:0] acc);
                integer i;
                initial begin
                    acc = 8'd0;
                    for (i = 0; i < 5; i = i + 1) acc = acc + 8'd2;
                end
            endmodule",
        );
        sim.set("clk", 0).unwrap();
        assert_eq!(sim.get("acc"), Some(10));
    }

    #[test]
    fn unknown_signal_reported() {
        let mut sim = sim_of("module m(input a, output y); assign y = a; endmodule");
        assert!(sim.set("nope", 1).is_err());
        assert_eq!(sim.get("nope"), None);
    }

    #[test]
    fn instances_rejected() {
        let file = parse("module m(input a, output y); sub u0(.i(a), .o(y)); endmodule").unwrap();
        assert!(Simulator::new(&file.modules[0]).is_err());
    }

    #[test]
    fn bit_assignment_read_modify_write() {
        let mut sim = sim_of(
            "module m(input [2:0] idx, input v, output reg [7:0] r);
                always @* begin
                    r = 8'd0;
                    r[idx] = v;
                end
            endmodule",
        );
        sim.set("idx", 3).unwrap();
        sim.set("v", 1).unwrap();
        assert_eq!(sim.get("r"), Some(8));
    }
}
