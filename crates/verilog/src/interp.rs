//! A cycle-accurate interpreter for the supported Verilog subset.
//!
//! The simulator evaluates a single flattened module (no instances) with
//! two-state semantics (no `x`/`z`): continuous assigns and combinational
//! `always` blocks are propagated to a fixpoint, clocked `always` blocks
//! fire on explicit [`Simulator::step`] calls with nonblocking semantics
//! (right-hand sides read pre-edge state, updates commit together).
//!
//! Width semantics are deliberately simplified relative to the LRM:
//! expressions are computed in 128-bit arithmetic and truncated to the
//! target width at assignment. For the structured RTL the corpus generator
//! emits (consistent widths, no implicit extension tricks) this matches
//! event-driven simulators bit for bit.
//!
//! Signals are interned into a dense slot table at elaboration; the hot
//! path (step/settle) reuses pre-edge snapshot and nonblocking-queue
//! buffers across calls and allocates nothing once warm. For an even
//! faster backend that schedules combinational logic once instead of
//! iterating to a fixpoint, see [`crate::CompiledSim`].
//!
//! The NOODLE test-suite uses the simulator to *functionally* validate
//! Trojan insertion: an infected design must behave identically to its
//! benign original until the trigger condition is met, and must deviate
//! once it fires.

use std::collections::HashMap;
use std::fmt;

use crate::ast::*;
use crate::sched::{self, CombRef};

/// An error produced while building or running a simulator backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    message: String,
    cycle: Option<Vec<String>>,
}

impl SimError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self { message: message.into(), cycle: None }
    }

    /// Builds the combinational-loop error shared by both engines: the
    /// message spells out the signal chain in dependency order, closed
    /// back on its first element.
    pub(crate) fn combinational_loop(chain: Vec<String>) -> Self {
        let mut closed = chain.clone();
        if let Some(first) = closed.first().cloned() {
            closed.push(first);
        }
        Self {
            message: format!("combinational loop detected: {}", closed.join(" -> ")),
            cycle: Some(chain),
        }
    }

    /// The signal names of the detected combinational loop, in
    /// dependency order, when this error came from loop detection.
    pub fn cycle(&self) -> Option<&[String]> {
        self.cycle.as_deref()
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.message)
    }
}

impl std::error::Error for SimError {}

pub(crate) const MAX_SETTLE_ITERATIONS: usize = 200;
pub(crate) const MAX_LOOP_ITERATIONS: usize = 100_000;

/// One interned signal.
///
/// `exists` mirrors membership in the former `values` map (a slot can be
/// reserved by a nonblocking write to a not-yet-created name without the
/// name becoming readable); `declared` mirrors membership in the former
/// `widths` map (stores to undeclared names keep full 128-bit values).
#[derive(Debug, Clone, Copy)]
struct Slot {
    value: u128,
    width: u32,
    declared: bool,
    exists: bool,
}

/// Interned signal storage: dense slots plus a name index.
#[derive(Debug, Clone, Default)]
struct State {
    index: HashMap<String, u32>,
    names: Vec<String>,
    slots: Vec<Slot>,
}

/// A reusable copy of slot state at a snapshot point: pre-edge state for
/// nonblocking reads, block-entry state for `always` conditions, and
/// sweep-entry state for the settle fixpoint check.
#[derive(Debug, Clone, Default)]
struct Snapshot {
    entries: Vec<(bool, u128)>,
}

impl Snapshot {
    fn capture(&mut self, state: &State) {
        self.entries.clear();
        self.entries.extend(state.slots.iter().map(|s| (s.exists, s.value)));
    }

    /// The snapshotted value of `atom`, or `None` if the signal did not
    /// exist when the snapshot was taken.
    fn get(&self, atom: u32) -> Option<u128> {
        match self.entries.get(atom as usize) {
            Some(&(true, v)) => Some(v),
            _ => None,
        }
    }
}

fn unknown_signal(name: &str) -> SimError {
    SimError::new(format!("unknown signal `{name}`"))
}

impl State {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&atom) = self.index.get(name) {
            return atom;
        }
        let atom = self.slots.len() as u32;
        self.index.insert(name.to_string(), atom);
        self.names.push(name.to_string());
        self.slots.push(Slot { value: 0, width: 0, declared: false, exists: false });
        atom
    }

    fn declare(&mut self, name: &str, width: u32) -> u32 {
        let atom = self.intern(name);
        let slot = &mut self.slots[atom as usize];
        slot.width = width.min(128);
        slot.declared = true;
        slot.exists = true;
        atom
    }

    fn store_atom(&mut self, atom: u32, value: u128) {
        let slot = &mut self.slots[atom as usize];
        let width = if slot.declared { slot.width } else { 128 };
        slot.value = mask(value, width);
        slot.exists = true;
    }

    fn store(&mut self, name: &str, value: u128) {
        let atom = self.intern(name);
        self.store_atom(atom, value);
    }

    /// Live value of an existing signal; "unknown signal" otherwise.
    fn existing(&self, name: &str) -> Result<u128, SimError> {
        match self.index.get(name) {
            Some(&atom) if self.slots[atom as usize].exists => Ok(self.slots[atom as usize].value),
            _ => Err(unknown_signal(name)),
        }
    }

    /// Reads a signal for evaluation: the snapshot if one is active and
    /// holds the signal, falling back to live state (signals created
    /// after the snapshot was taken are visible live).
    fn read(&self, name: &str, pre: Option<&Snapshot>) -> Result<u128, SimError> {
        let atom = *self.index.get(name).ok_or_else(|| unknown_signal(name))?;
        if let Some(snapshot) = pre {
            if let Some(value) = snapshot.get(atom) {
                return Ok(value);
            }
        }
        let slot = &self.slots[atom as usize];
        if slot.exists {
            Ok(slot.value)
        } else {
            Err(unknown_signal(name))
        }
    }

    /// Executes a statement. Nonblocking assignments evaluate against
    /// `pre` and are queued in `nb`; blocking assignments apply
    /// immediately.
    fn exec(
        &mut self,
        stmt: &Stmt,
        nb: &mut Vec<(u32, u128)>,
        pre: &Snapshot,
    ) -> Result<(), SimError> {
        match stmt {
            Stmt::Block { stmts, .. } => {
                for s in stmts {
                    self.exec(s, nb, pre)?;
                }
                Ok(())
            }
            Stmt::If { cond, then_branch, else_branch } => {
                if self.eval_with(cond, Some(pre))? != 0 {
                    self.exec(then_branch, nb, pre)
                } else if let Some(els) = else_branch {
                    self.exec(els, nb, pre)
                } else {
                    Ok(())
                }
            }
            Stmt::Case { subject, arms, default, .. } => {
                let subject_value = self.eval_with(subject, Some(pre))?;
                for arm in arms {
                    for label in &arm.labels {
                        if self.eval_with(label, Some(pre))? == subject_value {
                            return self.exec(&arm.body, nb, pre);
                        }
                    }
                }
                if let Some(d) = default {
                    self.exec(d, nb, pre)?;
                }
                Ok(())
            }
            Stmt::Blocking { lhs, rhs } => {
                let value = self.eval(rhs)?;
                self.assign_lvalue(lhs, value)
            }
            Stmt::Nonblocking { lhs, rhs } => {
                let value = self.eval_with(rhs, Some(pre))?;
                match lhs {
                    LValue::Ident(name) => {
                        let atom = self.intern(name);
                        nb.push((atom, value));
                        Ok(())
                    }
                    LValue::Bit { name, index } => {
                        let idx = self.eval_with(index, Some(pre))? as u32;
                        let current = self.nb_current(name, nb, pre)?;
                        let updated = (current & !(1u128 << idx)) | ((value & 1) << idx);
                        let atom = self.intern(name);
                        nb.push((atom, updated));
                        Ok(())
                    }
                    LValue::Part { name, msb, lsb } => {
                        let (hi, lo) = (*msb.max(lsb) as u32, *msb.min(lsb) as u32);
                        let field = hi - lo + 1;
                        let current = self.nb_current(name, nb, pre)?;
                        let m = mask(u128::MAX, field) << lo;
                        let updated = (current & !m) | (mask(value, field) << lo);
                        let atom = self.intern(name);
                        nb.push((atom, updated));
                        Ok(())
                    }
                    LValue::Concat(_) => {
                        Err(SimError::new("nonblocking concatenation targets are not supported"))
                    }
                }
            }
            Stmt::For { init, cond, step, body } => {
                self.exec(init, nb, pre)?;
                let mut iterations = 0;
                while self.eval(cond)? != 0 {
                    self.exec(body, nb, pre)?;
                    self.exec(step, nb, pre)?;
                    iterations += 1;
                    if iterations > MAX_LOOP_ITERATIONS {
                        return Err(SimError::new("for loop exceeded the iteration budget"));
                    }
                }
                Ok(())
            }
            Stmt::SystemCall { .. } | Stmt::Null => Ok(()),
        }
    }

    /// The value a nonblocking read-modify-write starts from: the newest
    /// queued update for the signal, else its pre-edge value. (No live
    /// fallback — a signal created after the snapshot is not visible to
    /// nonblocking RMW, matching event-driven pre-edge semantics.)
    fn nb_current(&self, name: &str, nb: &[(u32, u128)], pre: &Snapshot) -> Result<u128, SimError> {
        let atom = *self.index.get(name).ok_or_else(|| unknown_signal(name))?;
        nb.iter()
            .rev()
            .find(|&&(a, _)| a == atom)
            .map(|&(_, v)| v)
            .or_else(|| pre.get(atom))
            .ok_or_else(|| unknown_signal(name))
    }

    fn assign_lvalue(&mut self, lhs: &LValue, value: u128) -> Result<(), SimError> {
        match lhs {
            LValue::Ident(name) => {
                let atom = match self.index.get(name) {
                    Some(&a) if self.slots[a as usize].exists => a,
                    _ => self.declare(name, 1),
                };
                self.store_atom(atom, value);
                Ok(())
            }
            LValue::Bit { name, index } => {
                let idx = self.eval(index)? as u32;
                let current = self.existing(name)?;
                let updated = (current & !(1u128 << idx)) | ((value & 1) << idx);
                self.store(name, updated);
                Ok(())
            }
            LValue::Part { name, msb, lsb } => {
                let (hi, lo) = (*msb.max(lsb) as u32, *msb.min(lsb) as u32);
                let field = hi - lo + 1;
                let current = self.existing(name)?;
                let m = mask(u128::MAX, field) << lo;
                let updated = (current & !m) | (mask(value, field) << lo);
                self.store(name, updated);
                Ok(())
            }
            LValue::Concat(parts) => {
                // Assign from MSB part to LSB part.
                let mut remaining = value;
                for part in parts.iter().rev() {
                    let width = self.lvalue_width(part)?;
                    self.assign_lvalue(part, mask(remaining, width))?;
                    remaining >>= width;
                }
                Ok(())
            }
        }
    }

    fn lvalue_width(&self, lhs: &LValue) -> Result<u32, SimError> {
        match lhs {
            LValue::Ident(name) => match self.index.get(name) {
                Some(&a) if self.slots[a as usize].declared => Ok(self.slots[a as usize].width),
                _ => Err(unknown_signal(name)),
            },
            LValue::Bit { .. } => Ok(1),
            LValue::Part { msb, lsb, .. } => Ok(msb.abs_diff(*lsb) as u32 + 1),
            LValue::Concat(parts) => {
                let mut total = 0;
                for p in parts {
                    total += self.lvalue_width(p)?;
                }
                Ok(total)
            }
        }
    }

    fn eval(&self, expr: &Expr) -> Result<u128, SimError> {
        self.eval_with(expr, None)
    }

    fn eval_with(&self, expr: &Expr, pre: Option<&Snapshot>) -> Result<u128, SimError> {
        Ok(match expr {
            Expr::Ident(name) => self.read(name, pre)?,
            Expr::Literal(l) => match l.width {
                Some(w) => mask(l.value, w),
                None => l.value,
            },
            Expr::Str(_) => 0,
            Expr::Bit { name, index } => {
                let base = self.read(name, pre)?;
                let idx = self.eval_with(index, pre)? as u32;
                (base >> idx.min(127)) & 1
            }
            Expr::Part { name, msb, lsb } => {
                let base = self.read(name, pre)?;
                let (hi, lo) = (*msb.max(lsb) as u32, *msb.min(lsb) as u32);
                mask(base >> lo, hi - lo + 1)
            }
            Expr::Unary { op, operand } => {
                let v = self.eval_with(operand, pre)?;
                let w = self.expr_width(operand)?;
                apply_unary(*op, v, w)
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval_with(lhs, pre)?;
                let b = self.eval_with(rhs, pre)?;
                let w = self.expr_width(expr)?;
                apply_binary(*op, a, b, w)
            }
            Expr::Ternary { cond, then_expr, else_expr } => {
                if self.eval_with(cond, pre)? != 0 {
                    self.eval_with(then_expr, pre)?
                } else {
                    self.eval_with(else_expr, pre)?
                }
            }
            Expr::Concat(parts) => {
                let mut out: u128 = 0;
                for part in parts {
                    let w = self.expr_width(part)?;
                    out = (out << w) | mask(self.eval_with(part, pre)?, w);
                }
                out
            }
            Expr::Repeat { count, expr } => {
                let w = self.expr_width(expr)?;
                let v = mask(self.eval_with(expr, pre)?, w);
                let mut out: u128 = 0;
                for _ in 0..*count {
                    out = (out << w) | v;
                }
                out
            }
        })
    }

    /// Self-determined bit width of an expression (simplified LRM rules).
    fn expr_width(&self, expr: &Expr) -> Result<u32, SimError> {
        Ok(match expr {
            Expr::Ident(name) => match self.index.get(name) {
                Some(&a) if self.slots[a as usize].declared => self.slots[a as usize].width,
                _ => 32,
            },
            Expr::Literal(l) => l.width.unwrap_or(32),
            Expr::Str(_) => 0,
            Expr::Bit { .. } => 1,
            Expr::Part { msb, lsb, .. } => msb.abs_diff(*lsb) as u32 + 1,
            Expr::Unary { op, operand } => match op {
                UnaryOp::Not | UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor => 1,
                _ => self.expr_width(operand)?,
            },
            Expr::Binary { op, lhs, rhs } => match op {
                BinaryOp::LogicOr
                | BinaryOp::LogicAnd
                | BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::CaseEq
                | BinaryOp::CaseNeq
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge => 1,
                _ => self.expr_width(lhs)?.max(self.expr_width(rhs)?),
            },
            Expr::Ternary { then_expr, else_expr, .. } => {
                self.expr_width(then_expr)?.max(self.expr_width(else_expr)?)
            }
            Expr::Concat(parts) => {
                let mut total = 0;
                for p in parts {
                    total += self.expr_width(p)?;
                }
                total
            }
            Expr::Repeat { count, expr } => count * self.expr_width(expr)?,
        })
    }
}

/// Applies a binary operator with the interpreter's width semantics.
/// Shared with the compiled engine so both backends agree bit for bit.
pub(crate) fn apply_binary(op: BinaryOp, a: u128, b: u128, w: u32) -> u128 {
    match op {
        BinaryOp::LogicOr => ((a != 0) || (b != 0)) as u128,
        BinaryOp::LogicAnd => ((a != 0) && (b != 0)) as u128,
        BinaryOp::BitOr => mask(a | b, w),
        BinaryOp::BitXor => mask(a ^ b, w),
        BinaryOp::BitXnor => mask(!(a ^ b), w),
        BinaryOp::BitAnd => mask(a & b, w),
        BinaryOp::Eq | BinaryOp::CaseEq => (a == b) as u128,
        BinaryOp::Neq | BinaryOp::CaseNeq => (a != b) as u128,
        BinaryOp::Lt => (a < b) as u128,
        BinaryOp::Le => (a <= b) as u128,
        BinaryOp::Gt => (a > b) as u128,
        BinaryOp::Ge => (a >= b) as u128,
        BinaryOp::Shl => mask(a.checked_shl(b.min(127) as u32).unwrap_or(0), w),
        BinaryOp::Shr => a.checked_shr(b.min(127) as u32).unwrap_or(0),
        BinaryOp::Add => mask(a.wrapping_add(b), w),
        BinaryOp::Sub => mask(a.wrapping_sub(b), w),
        BinaryOp::Mul => mask(a.wrapping_mul(b), w),
        BinaryOp::Div => a.checked_div(b).unwrap_or(0),
        BinaryOp::Mod => a.checked_rem(b).unwrap_or(0),
    }
}

/// Applies a unary operator with the interpreter's width semantics.
/// Shared with the compiled engine so both backends agree bit for bit.
pub(crate) fn apply_unary(op: UnaryOp, v: u128, w: u32) -> u128 {
    match op {
        UnaryOp::Not => (v == 0) as u128,
        UnaryOp::BitNot => mask(!v, w),
        UnaryOp::Neg => mask(v.wrapping_neg(), w.max(1)),
        UnaryOp::RedAnd => (v == mask(u128::MAX, w)) as u128,
        UnaryOp::RedOr => (v != 0) as u128,
        UnaryOp::RedXor => (v.count_ones() % 2) as u128,
    }
}

/// A two-state interpreter for one module.
///
/// # Examples
///
/// ```
/// use noodle_verilog::{parse, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let file = parse(
///     "module counter(input clk, input rst, output reg [3:0] q);
///        always @(posedge clk) if (rst) q <= 4'd0; else q <= q + 4'd1;
///      endmodule",
/// )?;
/// let mut sim = Simulator::new(&file.modules[0])?;
/// sim.set("rst", 1)?;
/// sim.step("clk")?;
/// sim.set("rst", 0)?;
/// for _ in 0..5 {
///     sim.step("clk")?;
/// }
/// assert_eq!(sim.get("q"), Some(5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    state: State,
    inputs: Vec<(String, u32)>,
    outputs: Vec<(String, u32)>,
    comb: Vec<CombProcess>,
    clocked: Vec<ClockedProcess>,
    initials: Vec<Stmt>,
    initialized: bool,
    /// Reusable pre-edge / block-entry snapshot buffer.
    pre: Snapshot,
    /// Reusable sweep-entry snapshot for the settle fixpoint check.
    before: Snapshot,
    /// Reusable nonblocking update queue.
    nb: Vec<(u32, u128)>,
}

#[derive(Debug, Clone)]
enum CombProcess {
    Assign { lhs: LValue, rhs: Expr },
    Always { body: Stmt },
}

#[derive(Debug, Clone)]
struct ClockedProcess {
    events: Vec<EventExpr>,
    body: Stmt,
}

impl Simulator {
    /// Builds a simulator for a flattened module.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the module instantiates submodules (flatten
    /// first) or uses constructs outside the supported subset.
    pub fn new(module: &Module) -> Result<Self, SimError> {
        let _span =
            noodle_telemetry::span!("sim.elaborate", module = module.name, backend = "interp");
        let mut sim = Self {
            state: State::default(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            comb: Vec::new(),
            clocked: Vec::new(),
            initials: Vec::new(),
            initialized: false,
            pre: Snapshot::default(),
            before: Snapshot::default(),
            nb: Vec::new(),
        };
        for port in module.resolved_ports() {
            let width = port.range.map(|r| r.width() as u32).unwrap_or(1);
            sim.state.declare(&port.name, width);
            match port.direction {
                PortDirection::Input => sim.inputs.push((port.name.clone(), width)),
                PortDirection::Output => sim.outputs.push((port.name.clone(), width)),
                _ => {}
            }
        }
        for item in &module.items {
            match item {
                Item::Decl { range, names, .. } => {
                    let width = range.map(|r| r.width() as u32).unwrap_or(32);
                    for name in names {
                        sim.state.declare(name, width);
                    }
                }
                Item::PortDecl { .. } => {}
                Item::Parameter { name, value } | Item::Localparam { name, value } => {
                    let atom = sim.state.declare(name, 32);
                    // Parameter values are stored unmasked (a 32-bit
                    // declared width does not truncate the constant).
                    let v = sim.state.eval(value)?;
                    sim.state.slots[atom as usize].value = v;
                }
                Item::Assign { lhs, rhs } => {
                    sim.comb.push(CombProcess::Assign { lhs: lhs.clone(), rhs: rhs.clone() });
                }
                Item::Always { event, body } => match event {
                    EventControl::Star => sim.comb.push(CombProcess::Always { body: body.clone() }),
                    EventControl::Events(events) => {
                        if events.iter().any(|e| e.edge.is_some()) {
                            sim.clocked.push(ClockedProcess {
                                events: events.clone(),
                                body: body.clone(),
                            });
                        } else {
                            sim.comb.push(CombProcess::Always { body: body.clone() });
                        }
                    }
                },
                Item::Initial { body } => sim.initials.push(body.clone()),
                Item::Instance { .. } => {
                    return Err(SimError::new(
                        "module instances are not supported; flatten the design first",
                    ))
                }
            }
        }
        Ok(sim)
    }

    fn ensure_initialized(&mut self) -> Result<(), SimError> {
        if self.initialized {
            return Ok(());
        }
        self.initialized = true;
        for body in &self.initials {
            self.nb.clear();
            self.pre.capture(&self.state);
            self.state.exec(body, &mut self.nb, &self.pre)?;
            for i in 0..self.nb.len() {
                let (atom, value) = self.nb[i];
                self.state.store_atom(atom, value);
            }
            self.nb.clear();
        }
        self.settle()
    }

    /// Sets an input (or any signal) to `value`, truncated to its width,
    /// and re-settles combinational logic.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the signal does not exist or settling fails.
    pub fn set(&mut self, name: &str, value: u128) -> Result<(), SimError> {
        self.ensure_initialized()?;
        self.state.existing(name)?;
        self.state.store(name, value);
        self.settle()
    }

    /// Current value of a signal, if it exists.
    pub fn get(&self, name: &str) -> Option<u128> {
        let &atom = self.state.index.get(name)?;
        let slot = &self.state.slots[atom as usize];
        slot.exists.then_some(slot.value)
    }

    /// Width in bits of a signal, if it exists.
    pub fn width(&self, name: &str) -> Option<u32> {
        let &atom = self.state.index.get(name)?;
        let slot = &self.state.slots[atom as usize];
        slot.declared.then_some(slot.width)
    }

    /// The module's input ports as `(name, width)` pairs, in declaration
    /// order.
    pub fn inputs(&self) -> &[(String, u32)] {
        &self.inputs
    }

    /// The module's output ports as `(name, width)` pairs, in declaration
    /// order.
    pub fn outputs(&self) -> &[(String, u32)] {
        &self.outputs
    }

    /// Names of every signal in the simulation, in creation order
    /// (declaration order for a flattened module).
    pub fn signal_names(&self) -> Vec<String> {
        self.state
            .names
            .iter()
            .zip(&self.state.slots)
            .filter(|(_, slot)| slot.exists)
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Performs one positive clock edge on `clock`: every clocked process
    /// sensitive to `posedge clock` fires with nonblocking semantics, then
    /// combinational logic re-settles.
    ///
    /// Processes with additional `negedge rst`-style events fire on the
    /// clock edge here; asynchronous resets can be exercised by setting the
    /// reset signal and calling [`Simulator::async_reset`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on evaluation failure or a combinational loop.
    pub fn step(&mut self, clock: &str) -> Result<(), SimError> {
        self.ensure_initialized()?;
        self.pre.capture(&self.state);
        self.nb.clear();
        for process in &self.clocked {
            let sensitive = process.events.iter().any(|e| e.signal == clock);
            if !sensitive {
                continue;
            }
            self.state.exec(&process.body, &mut self.nb, &self.pre)?;
        }
        for i in 0..self.nb.len() {
            let (atom, value) = self.nb[i];
            self.state.store_atom(atom, value);
        }
        self.nb.clear();
        self.settle()
    }

    /// Fires every clocked process sensitive to an edge on `signal`
    /// (asynchronous set/reset modelling).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on evaluation failure or a combinational loop.
    pub fn async_reset(&mut self, signal: &str) -> Result<(), SimError> {
        self.step(signal)
    }

    /// Runs `cycles` clock cycles.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] under the same conditions as
    /// [`Simulator::step`].
    pub fn run(&mut self, clock: &str, cycles: usize) -> Result<(), SimError> {
        let _span = noodle_telemetry::span!("sim.run", cycles = cycles, backend = "interp");
        let start = std::time::Instant::now();
        for _ in 0..cycles {
            self.step(clock)?;
        }
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.0 {
            noodle_telemetry::gauge_set("sim.cycles_per_sec", cycles as f64 / secs);
        }
        Ok(())
    }

    /// Propagates combinational logic to a fixpoint.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the logic does not stabilize within the
    /// iteration budget; when dependency analysis can pinpoint the
    /// combinational loop, the error names the exact signal cycle.
    pub fn settle(&mut self) -> Result<(), SimError> {
        for _ in 0..MAX_SETTLE_ITERATIONS {
            self.before.capture(&self.state);
            for process in &self.comb {
                match process {
                    CombProcess::Assign { lhs, rhs } => {
                        let value = self.state.eval(rhs)?;
                        self.state.assign_lvalue(lhs, value)?;
                    }
                    CombProcess::Always { body } => {
                        // Blocking semantics: updates apply immediately;
                        // conditions read block-entry state.
                        self.nb.clear();
                        self.pre.capture(&self.state);
                        self.state.exec(body, &mut self.nb, &self.pre)?;
                        for i in 0..self.nb.len() {
                            let (atom, value) = self.nb[i];
                            self.state.store_atom(atom, value);
                        }
                        self.nb.clear();
                    }
                }
            }
            let stable =
                self.state.slots.len() == self.before.entries.len()
                    && self.state.slots.iter().zip(&self.before.entries).all(
                        |(slot, &(exists, value))| slot.exists == exists && slot.value == value,
                    );
            if stable {
                return Ok(());
            }
        }
        Err(self.diagnose_unsettled())
    }

    /// Explains a settle failure: runs the scheduler's dependency
    /// analysis over the combinational processes and, when it finds a
    /// static cycle, reports the signal chain.
    fn diagnose_unsettled(&self) -> SimError {
        let resolve = |name: &str| {
            self.state.index.get(name).map(|&atom| {
                let slot = &self.state.slots[atom as usize];
                (atom, if slot.declared { slot.width } else { 128 })
            })
        };
        let ios: Vec<_> = self
            .comb
            .iter()
            .map(|process| {
                let as_ref = match process {
                    CombProcess::Assign { lhs, rhs } => CombRef::Assign { lhs, rhs },
                    CombProcess::Always { body } => CombRef::Always { body },
                };
                sched::comb_io(as_ref, &resolve)
            })
            .collect();
        match sched::schedule(&ios) {
            Err(cycle) => {
                let chain = cycle
                    .atoms
                    .iter()
                    .map(|&atom| self.state.names[atom as usize].clone())
                    .collect();
                SimError::combinational_loop(chain)
            }
            Ok(_) => SimError::new(format!(
                "combinational logic did not settle after {MAX_SETTLE_ITERATIONS} iterations"
            )),
        }
    }
}

pub(crate) fn mask(value: u128, width: u32) -> u128 {
    if width >= 128 {
        value
    } else {
        value & ((1u128 << width) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn sim_of(src: &str) -> Simulator {
        let file = parse(src).unwrap();
        Simulator::new(&file.modules[0]).unwrap()
    }

    #[test]
    fn combinational_gates() {
        let mut sim = sim_of(
            "module m(input a, input b, output y, output z);
                assign y = a & b;
                assign z = a ^ b;
            endmodule",
        );
        sim.set("a", 1).unwrap();
        sim.set("b", 1).unwrap();
        assert_eq!(sim.get("y"), Some(1));
        assert_eq!(sim.get("z"), Some(0));
        sim.set("b", 0).unwrap();
        assert_eq!(sim.get("y"), Some(0));
        assert_eq!(sim.get("z"), Some(1));
    }

    #[test]
    fn counter_counts_and_wraps() {
        let mut sim = sim_of(
            "module m(input clk, input rst, output reg [1:0] q);
                always @(posedge clk) if (rst) q <= 2'd0; else q <= q + 2'd1;
            endmodule",
        );
        sim.set("rst", 1).unwrap();
        sim.step("clk").unwrap();
        sim.set("rst", 0).unwrap();
        for expected in [1u128, 2, 3, 0, 1] {
            sim.step("clk").unwrap();
            assert_eq!(sim.get("q"), Some(expected));
        }
    }

    #[test]
    fn nonblocking_swap() {
        // The classic register swap only works with nonblocking semantics.
        let mut sim = sim_of(
            "module m(input clk, output reg a, output reg b);
                initial begin a = 1'b1; b = 1'b0; end
                always @(posedge clk) a <= b;
                always @(posedge clk) b <= a;
            endmodule",
        );
        sim.set("clk", 0).unwrap(); // force initialization
        assert_eq!(sim.get("a"), Some(1));
        assert_eq!(sim.get("b"), Some(0));
        sim.step("clk").unwrap();
        assert_eq!(sim.get("a"), Some(0));
        assert_eq!(sim.get("b"), Some(1));
    }

    #[test]
    fn comb_always_with_case() {
        let mut sim = sim_of(
            "module m(input [1:0] s, output reg [3:0] y);
                always @* case (s)
                    2'd0: y = 4'd1;
                    2'd1: y = 4'd2;
                    2'd2: y = 4'd4;
                    default: y = 4'd8;
                endcase
            endmodule",
        );
        for (s, y) in [(0u128, 1u128), (1, 2), (2, 4), (3, 8)] {
            sim.set("s", s).unwrap();
            assert_eq!(sim.get("y"), Some(y), "s = {s}");
        }
    }

    #[test]
    fn part_select_and_concat() {
        let mut sim = sim_of(
            "module m(input [7:0] d, output [7:0] y, output [3:0] hi);
                assign y = {d[3:0], d[7:4]};
                assign hi = d[7:4];
            endmodule",
        );
        sim.set("d", 0xA5).unwrap();
        assert_eq!(sim.get("y"), Some(0x5A));
        assert_eq!(sim.get("hi"), Some(0xA));
    }

    #[test]
    fn replication_and_reductions() {
        let mut sim = sim_of(
            "module m(input [3:0] d, output [7:0] y, output p, output all);
                assign y = {2{d}};
                assign p = ^d;
                assign all = &d;
            endmodule",
        );
        sim.set("d", 0b1010).unwrap();
        assert_eq!(sim.get("y"), Some(0b1010_1010));
        assert_eq!(sim.get("p"), Some(0));
        assert_eq!(sim.get("all"), Some(0));
        sim.set("d", 0b1111).unwrap();
        assert_eq!(sim.get("all"), Some(1));
    }

    #[test]
    fn chained_comb_settles() {
        let mut sim = sim_of(
            "module m(input a, output y);
                wire t1, t2;
                assign t2 = ~t1;
                assign t1 = ~a;
                assign y = ~t2;
            endmodule",
        );
        sim.set("a", 1).unwrap();
        assert_eq!(sim.get("y"), Some(0));
    }

    #[test]
    fn combinational_loop_detected() {
        // A ring oscillator has no stable point and must be reported.
        let file = parse(
            "module m(output y);
                wire a;
                assign a = ~a;
                assign y = a;
            endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&file.modules[0]).unwrap();
        let err = sim.settle().unwrap_err();
        assert_eq!(err.cycle(), Some(&["a".to_string()][..]), "{err}");
        assert!(err.to_string().contains("a -> a"), "{err}");
    }

    #[test]
    fn two_signal_loop_names_the_cycle() {
        // `a = ~b; b = ~a` converges under the sequential sweep (it is a
        // stable latch), so use the genuinely oscillating ring: the
        // interpreter only diagnoses loops that fail to settle.
        let file = parse(
            "module m(output y);
                wire a, b;
                assign a = ~b;
                assign b = a;
                assign y = a;
            endmodule",
        )
        .unwrap();
        let mut sim = Simulator::new(&file.modules[0]).unwrap();
        let err = sim.settle().unwrap_err();
        let cycle = err.cycle().expect("loop diagnosis should name the cycle");
        assert_eq!(cycle.len(), 2, "{cycle:?}");
        assert!(cycle.contains(&"a".to_string()) && cycle.contains(&"b".to_string()), "{cycle:?}");
        assert!(err.to_string().contains("combinational loop detected"), "{err}");
        assert!(err.to_string().contains("a -> b -> a"), "{err}");
    }

    #[test]
    fn arithmetic_truncates_to_width() {
        let mut sim = sim_of(
            "module m(input [3:0] a, input [3:0] b, output [3:0] s);
                assign s = a + b;
            endmodule",
        );
        sim.set("a", 12).unwrap();
        sim.set("b", 7).unwrap();
        assert_eq!(sim.get("s"), Some(3)); // 19 mod 16
    }

    #[test]
    fn for_loop_in_initial() {
        let mut sim = sim_of(
            "module m(input clk, output reg [7:0] acc);
                integer i;
                initial begin
                    acc = 8'd0;
                    for (i = 0; i < 5; i = i + 1) acc = acc + 8'd2;
                end
            endmodule",
        );
        sim.set("clk", 0).unwrap();
        assert_eq!(sim.get("acc"), Some(10));
    }

    #[test]
    fn unknown_signal_reported() {
        let mut sim = sim_of("module m(input a, output y); assign y = a; endmodule");
        assert!(sim.set("nope", 1).is_err());
        assert_eq!(sim.get("nope"), None);
    }

    #[test]
    fn instances_rejected() {
        let file = parse("module m(input a, output y); sub u0(.i(a), .o(y)); endmodule").unwrap();
        assert!(Simulator::new(&file.modules[0]).is_err());
    }

    #[test]
    fn bit_assignment_read_modify_write() {
        let mut sim = sim_of(
            "module m(input [2:0] idx, input v, output reg [7:0] r);
                always @* begin
                    r = 8'd0;
                    r[idx] = v;
                end
            endmodule",
        );
        sim.set("idx", 3).unwrap();
        sim.set("v", 1).unwrap();
        assert_eq!(sim.get("r"), Some(8));
    }

    #[test]
    fn signal_names_cover_ports_and_internals() {
        let sim = sim_of(
            "module m(input a, output y);
                wire t;
                assign t = ~a;
                assign y = t;
            endmodule",
        );
        let names = sim.signal_names();
        for expected in ["a", "y", "t"] {
            assert!(names.iter().any(|n| n == expected), "missing {expected} in {names:?}");
        }
    }
}
