//! Combinational scheduling: dependency analysis, stable topological
//! sorting and loop extraction, shared by the compiled engine (which
//! schedules once at elaboration) and the interpreter (which uses the
//! same analysis to *explain* a settle failure with the exact signal
//! cycle instead of an opaque iteration cap).
//!
//! Dependencies are tracked at bit-range granularity ("atomization
//! lite"): a process that assigns `y[0]` and one that reads `y[1]` do
//! not conflict, so disjoint part-selects of one bus never produce a
//! false combinational loop. Implicit read-modify-write reads (the
//! untouched bits preserved by a bit/part-select store) are excluded —
//! preserving bits commutes across disjoint writers, so they impose no
//! ordering.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::ast::{Expr, LValue, Stmt};

/// A read or write of bits `lo..=hi` of signal atom `atom`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BitRange {
    pub atom: u32,
    pub lo: u32,
    pub hi: u32,
}

impl BitRange {
    fn overlaps(&self, other: &BitRange) -> bool {
        self.atom == other.atom && self.lo <= other.hi && other.lo <= self.hi
    }
}

/// External reads and writes of one combinational process.
#[derive(Debug, Clone, Default)]
pub(crate) struct ProcIo {
    pub reads: Vec<BitRange>,
    pub writes: Vec<BitRange>,
}

/// A borrowed view of one combinational process, shared between the
/// interpreter's process representation and the compiler's.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CombRef<'a> {
    Assign { lhs: &'a LValue, rhs: &'a Expr },
    Always { body: &'a Stmt },
}

/// Resolves signal names to atom indices and widths. Returns `None` for
/// names the caller does not know (they contribute no dependencies).
pub(crate) trait Resolver {
    fn resolve(&self, name: &str) -> Option<(u32, u32)>;
}

impl<F: Fn(&str) -> Option<(u32, u32)>> Resolver for F {
    fn resolve(&self, name: &str) -> Option<(u32, u32)> {
        self(name)
    }
}

fn whole(atom: u32, width: u32) -> BitRange {
    BitRange { atom, lo: 0, hi: width.saturating_sub(1) }
}

/// Collects the bit ranges read by `expr`. Constant bit/part selects
/// narrow the range; dynamic bit indices widen to the whole signal.
fn expr_reads(expr: &Expr, resolve: &dyn Resolver, out: &mut Vec<BitRange>) {
    match expr {
        Expr::Ident(name) => {
            if let Some((atom, width)) = resolve.resolve(name) {
                out.push(whole(atom, width));
            }
        }
        Expr::Literal(_) | Expr::Str(_) => {}
        Expr::Bit { name, index } => {
            if let Some((atom, width)) = resolve.resolve(name) {
                if let Expr::Literal(l) = index.as_ref() {
                    let bit = (l.value as u32).min(width.saturating_sub(1));
                    out.push(BitRange { atom, lo: bit, hi: bit });
                } else {
                    out.push(whole(atom, width));
                }
            }
            expr_reads(index, resolve, out);
        }
        Expr::Part { name, msb, lsb } => {
            if let Some((atom, _)) = resolve.resolve(name) {
                let (hi, lo) = (*msb.max(lsb) as u32, *msb.min(lsb) as u32);
                out.push(BitRange { atom, lo, hi });
            }
        }
        Expr::Unary { operand, .. } => expr_reads(operand, resolve, out),
        Expr::Binary { lhs, rhs, .. } => {
            expr_reads(lhs, resolve, out);
            expr_reads(rhs, resolve, out);
        }
        Expr::Ternary { cond, then_expr, else_expr } => {
            expr_reads(cond, resolve, out);
            expr_reads(then_expr, resolve, out);
            expr_reads(else_expr, resolve, out);
        }
        Expr::Concat(parts) => {
            for p in parts {
                expr_reads(p, resolve, out);
            }
        }
        Expr::Repeat { expr, .. } => expr_reads(expr, resolve, out),
    }
}

/// The bit ranges written by a target (plus the atoms of fully-written
/// whole signals, for definite-assignment tracking).
fn lvalue_writes(
    lhs: &LValue,
    resolve: &dyn Resolver,
    writes: &mut Vec<BitRange>,
    fully: &mut Vec<u32>,
    index_reads: &mut Vec<BitRange>,
) {
    match lhs {
        LValue::Ident(name) => {
            if let Some((atom, width)) = resolve.resolve(name) {
                writes.push(whole(atom, width));
                fully.push(atom);
            }
        }
        LValue::Bit { name, index } => {
            if let Some((atom, width)) = resolve.resolve(name) {
                if let Expr::Literal(l) = index.as_ref() {
                    let bit = (l.value as u32).min(width.saturating_sub(1));
                    writes.push(BitRange { atom, lo: bit, hi: bit });
                } else {
                    writes.push(whole(atom, width));
                }
            }
            expr_reads(index, resolve, index_reads);
        }
        LValue::Part { name, msb, lsb } => {
            if let Some((atom, _)) = resolve.resolve(name) {
                let (hi, lo) = (*msb.max(lsb) as u32, *msb.min(lsb) as u32);
                writes.push(BitRange { atom, lo, hi });
            }
        }
        LValue::Concat(parts) => {
            for p in parts {
                lvalue_writes(p, resolve, writes, fully, index_reads);
            }
        }
    }
}

/// Walks a comb `always` body tracking which atoms have definitely been
/// fully assigned (those shadow later *live-context* reads — blocking
/// RHSs and for-loop conditions). Snapshot-context reads (`if`/`case`
/// conditions and nonblocking RHSs read the body-entry snapshot in the
/// interpreter) are never shadowed.
fn walk_stmt(stmt: &Stmt, resolve: &dyn Resolver, io: &mut ProcIo, assigned: &mut HashSet<u32>) {
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts {
                walk_stmt(s, resolve, io, assigned);
            }
        }
        Stmt::If { cond, then_branch, else_branch } => {
            // Conditions read the body-entry snapshot: never shadowed.
            expr_reads(cond, resolve, &mut io.reads);
            let mut then_assigned = assigned.clone();
            walk_stmt(then_branch, resolve, io, &mut then_assigned);
            if let Some(els) = else_branch {
                let mut else_assigned = assigned.clone();
                walk_stmt(els, resolve, io, &mut else_assigned);
                // Only atoms assigned on *both* paths are definite.
                assigned.extend(then_assigned.intersection(&else_assigned).copied());
            }
        }
        Stmt::Case { subject, arms, default, .. } => {
            expr_reads(subject, resolve, &mut io.reads);
            let mut branch_sets: Vec<HashSet<u32>> = Vec::with_capacity(arms.len() + 1);
            for arm in arms {
                for label in &arm.labels {
                    expr_reads(label, resolve, &mut io.reads);
                }
                let mut arm_assigned = assigned.clone();
                walk_stmt(&arm.body, resolve, io, &mut arm_assigned);
                branch_sets.push(arm_assigned);
            }
            if let Some(d) = default {
                let mut def_assigned = assigned.clone();
                walk_stmt(d, resolve, io, &mut def_assigned);
                branch_sets.push(def_assigned);
                // With a default every path runs exactly one branch.
                if let Some((first, rest)) = branch_sets.split_first() {
                    let common: HashSet<u32> = rest
                        .iter()
                        .fold(first.clone(), |acc, s| acc.intersection(s).copied().collect());
                    assigned.extend(common);
                }
            }
        }
        Stmt::Blocking { lhs, rhs } => {
            // Blocking RHSs read live values: shadowed by earlier full
            // assignments within this body.
            let mut reads = Vec::new();
            expr_reads(rhs, resolve, &mut reads);
            reads.retain(|r| !assigned.contains(&r.atom));
            io.reads.extend(reads);
            let mut fully = Vec::new();
            let mut index_reads = Vec::new();
            lvalue_writes(lhs, resolve, &mut io.writes, &mut fully, &mut index_reads);
            index_reads.retain(|r| !assigned.contains(&r.atom));
            io.reads.extend(index_reads);
            assigned.extend(fully);
        }
        Stmt::Nonblocking { lhs, rhs } => {
            // Nonblocking RHSs and bit indices read the snapshot.
            expr_reads(rhs, resolve, &mut io.reads);
            let mut fully = Vec::new();
            let mut index_reads = Vec::new();
            lvalue_writes(lhs, resolve, &mut io.writes, &mut fully, &mut index_reads);
            io.reads.extend(index_reads);
            // NB commits after the body: later live reads do not see it,
            // so it never joins the definitely-assigned set.
        }
        Stmt::For { init, cond, step, body } => {
            walk_stmt(init, resolve, io, assigned);
            let mut cond_reads = Vec::new();
            expr_reads(cond, resolve, &mut cond_reads);
            cond_reads.retain(|r| !assigned.contains(&r.atom));
            io.reads.extend(cond_reads);
            // Body and step may run zero times: their writes count, their
            // definite assignments do not.
            let mut loop_assigned = assigned.clone();
            walk_stmt(body, resolve, io, &mut loop_assigned);
            walk_stmt(step, resolve, io, &mut loop_assigned);
        }
        // The interpreter never evaluates system-task arguments.
        Stmt::SystemCall { .. } | Stmt::Null => {}
    }
}

/// Computes the external reads and writes of one combinational process.
pub(crate) fn comb_io(process: CombRef<'_>, resolve: &dyn Resolver) -> ProcIo {
    let mut io = ProcIo::default();
    match process {
        CombRef::Assign { lhs, rhs } => {
            expr_reads(rhs, resolve, &mut io.reads);
            let mut fully = Vec::new();
            let mut index_reads = Vec::new();
            lvalue_writes(lhs, resolve, &mut io.writes, &mut fully, &mut index_reads);
            io.reads.extend(index_reads);
        }
        CombRef::Always { body } => {
            let mut assigned = HashSet::new();
            walk_stmt(body, resolve, &mut io, &mut assigned);
        }
    }
    io
}

/// The detected combinational loop: atoms of the signal chain, in
/// dependency order (`a -> b -> ... -> a`).
#[derive(Debug, Clone)]
pub(crate) struct Cycle {
    pub atoms: Vec<u32>,
}

/// Topologically sorts processes so every process runs after all
/// producers of its reads. The sort is *stable*: among unordered
/// processes, declaration order is preserved — this keeps last-writer-
/// wins semantics for overlapping writes identical to the interpreter's
/// sweep order. Processes with overlapping writes are additionally
/// ordered by declaration index for the same reason.
///
/// Returns the scheduled order, or the signal cycle on a loop.
pub(crate) fn schedule(ios: &[ProcIo]) -> Result<Vec<usize>, Cycle> {
    let n = ios.len();
    let mut edges: Vec<HashSet<usize>> = vec![HashSet::new(); n];

    // Self-dependency: a process reading bits it also writes is a loop
    // by itself (e.g. `assign a = ~a;`).
    for io in ios {
        for r in &io.reads {
            if let Some(w) = io.writes.iter().find(|w| w.overlaps(r)) {
                return Err(Cycle { atoms: vec![w.atom] });
            }
        }
    }

    for (a, io_a) in ios.iter().enumerate() {
        for (b, io_b) in ios.iter().enumerate() {
            if a == b {
                continue;
            }
            // Producer -> consumer.
            if io_a.writes.iter().any(|w| io_b.reads.iter().any(|r| w.overlaps(r))) {
                edges[a].insert(b);
            }
            // Overlapping writers keep declaration order.
            if a < b && io_a.writes.iter().any(|w| io_b.writes.iter().any(|x| w.overlaps(x))) {
                edges[a].insert(b);
            }
        }
    }

    let mut indegree = vec![0usize; n];
    for targets in &edges {
        for &t in targets {
            indegree[t] += 1;
        }
    }
    let mut ready: BinaryHeap<Reverse<usize>> =
        indegree.iter().enumerate().filter(|(_, &d)| d == 0).map(|(i, _)| Reverse(i)).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(i)) = ready.pop() {
        order.push(i);
        for &t in &edges[i] {
            indegree[t] -= 1;
            if indegree[t] == 0 {
                ready.push(Reverse(t));
            }
        }
    }
    if order.len() == n {
        return Ok(order);
    }

    // A loop remains among the unscheduled processes: walk successors
    // (restricted to unscheduled nodes, which all sit on or feed cycles)
    // until a process repeats, then link consecutive processes by the
    // signal that connects them.
    let scheduled: HashSet<usize> = order.iter().copied().collect();
    let start = (0..n).find(|i| !scheduled.contains(i)).expect("a process must remain");
    let mut path = vec![start];
    let mut seen: HashSet<usize> = HashSet::from([start]);
    let cycle_procs = loop {
        let cur = *path.last().expect("path is never empty");
        let next = edges[cur]
            .iter()
            .copied()
            .filter(|t| !scheduled.contains(t))
            .min()
            .expect("unscheduled process must have an unscheduled successor");
        if let Some(pos) = path.iter().position(|&p| p == next) {
            break path[pos..].to_vec();
        }
        seen.insert(next);
        path.push(next);
    };
    let mut atoms = Vec::with_capacity(cycle_procs.len());
    for (k, &p) in cycle_procs.iter().enumerate() {
        let q = cycle_procs[(k + 1) % cycle_procs.len()];
        let link = ios[p]
            .writes
            .iter()
            .find(|w| ios[q].reads.iter().any(|r| w.overlaps(r)))
            .or_else(|| ios[p].writes.first())
            .expect("cycle edge must involve a write");
        atoms.push(link.atom);
    }
    Err(Cycle { atoms })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(atom: u32) -> BitRange {
        BitRange { atom, lo: 0, hi: 0 }
    }

    #[test]
    fn chain_schedules_in_dependency_order() {
        // p0: c = b, p1: b = a, p2: y = c  (declaration order is wrong)
        let ios = vec![
            ProcIo { reads: vec![range(1)], writes: vec![range(2)] },
            ProcIo { reads: vec![range(0)], writes: vec![range(1)] },
            ProcIo { reads: vec![range(2)], writes: vec![range(3)] },
        ];
        assert_eq!(schedule(&ios).unwrap(), vec![1, 0, 2]);
    }

    #[test]
    fn independent_processes_keep_declaration_order() {
        let ios = vec![
            ProcIo { reads: vec![range(0)], writes: vec![range(1)] },
            ProcIo { reads: vec![range(0)], writes: vec![range(2)] },
            ProcIo { reads: vec![range(0)], writes: vec![range(3)] },
        ];
        assert_eq!(schedule(&ios).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn two_process_loop_is_reported_with_both_signals() {
        // p0: a = ~b, p1: b = ~a
        let ios = vec![
            ProcIo { reads: vec![range(1)], writes: vec![range(0)] },
            ProcIo { reads: vec![range(0)], writes: vec![range(1)] },
        ];
        let cycle = schedule(&ios).unwrap_err();
        let mut atoms = cycle.atoms.clone();
        atoms.sort_unstable();
        assert_eq!(atoms, vec![0, 1]);
    }

    #[test]
    fn self_loop_is_reported() {
        let ios = vec![ProcIo { reads: vec![range(7)], writes: vec![range(7)] }];
        assert_eq!(schedule(&ios).unwrap_err().atoms, vec![7]);
    }

    #[test]
    fn disjoint_bit_ranges_do_not_conflict() {
        // p0: y[0] = y[1] — reads and writes of y touch different bits.
        let ios = vec![ProcIo {
            reads: vec![BitRange { atom: 0, lo: 1, hi: 1 }],
            writes: vec![BitRange { atom: 0, lo: 0, hi: 0 }],
        }];
        assert_eq!(schedule(&ios).unwrap(), vec![0]);
    }

    #[test]
    fn overlapping_writers_stay_in_declaration_order() {
        let ios = vec![
            ProcIo { reads: vec![], writes: vec![range(5)] },
            ProcIo { reads: vec![], writes: vec![range(5)] },
        ];
        assert_eq!(schedule(&ios).unwrap(), vec![0, 1]);
    }
}
