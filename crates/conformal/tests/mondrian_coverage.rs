//! Finite-sample validity of Mondrian ICP: the invariant the online
//! coverage monitor in `noodle-observe` checks at serve time.
//!
//! For continuous exchangeable nonconformity scores, the probability that
//! the true-class p-value falls at or below ε is exactly
//! `floor(ε·(n_c + 1)) / (n_c + 1)` per class, where `n_c` is that class's
//! calibration count. The test draws calibration and test scores from the
//! same class-conditional distributions and asserts the empirical error
//! rate stays within a wide binomial tolerance band of that target, across
//! several seeds and ε values.

use noodle_conformal::MondrianIcp;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Class-conditional score draw: class 0 concentrates low, class 1 is
/// uniform — different shapes exercise the Mondrian (per-class) taxonomy.
fn draw_score(rng: &mut StdRng, class: usize) -> f32 {
    let u: f32 = rng.random_range(0.0..1.0);
    if class == 0 {
        u * u
    } else {
        u
    }
}

#[test]
fn empirical_coverage_tracks_one_minus_epsilon_per_class() {
    const CALIB_PER_CLASS: usize = 300;
    const TEST_PER_CLASS: usize = 2500;

    for &seed in &[7u64, 21, 99] {
        let mut rng = StdRng::seed_from_u64(seed);
        let calib: Vec<(f32, usize)> = (0..2 * CALIB_PER_CLASS)
            .map(|i| {
                let class = i % 2;
                (draw_score(&mut rng, class), class)
            })
            .collect();
        let icp = MondrianIcp::fit(&calib, 2).unwrap();

        let mut p_values: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
        for class in 0..2 {
            for _ in 0..TEST_PER_CLASS {
                let score = draw_score(&mut rng, class);
                p_values[class].push(icp.p_value(class, score));
            }
        }

        for &epsilon in &[0.05f64, 0.1, 0.2] {
            for class in 0..2 {
                let n_cal = icp.calibration_count(class) as f64;
                // Exact error target for continuous scores at this ε.
                let target = (epsilon * (n_cal + 1.0)).floor() / (n_cal + 1.0);
                let errors = p_values[class].iter().filter(|&&p| p <= epsilon).count() as f64;
                let rate = errors / TEST_PER_CLASS as f64;
                // 4.5σ binomial band: false-failure odds are negligible
                // across the whole seed × ε × class grid.
                let sigma = (target * (1.0 - target) / TEST_PER_CLASS as f64).sqrt();
                let band = 4.5 * sigma + 1e-3;
                assert!(
                    (rate - target).abs() <= band,
                    "seed {seed} ε={epsilon} class {class}: empirical error {rate:.4} \
                     deviates from exact target {target:.4} by more than {band:.4}"
                );
            }
        }
    }
}

#[test]
fn coverage_holds_under_class_imbalance() {
    // Trojan-infected designs are the rare class in NOODLE; label-conditional
    // calibration must keep per-class validity even at a 5:1 imbalance.
    const TEST_PER_CLASS: usize = 2500;
    let mut rng = StdRng::seed_from_u64(1234);
    let calib: Vec<(f32, usize)> = (0..600)
        .map(|i| {
            let class = usize::from(i % 6 == 0);
            (draw_score(&mut rng, class), class)
        })
        .collect();
    let icp = MondrianIcp::fit(&calib, 2).unwrap();
    assert!(icp.calibration_count(1) * 4 < icp.calibration_count(0));

    let epsilon = 0.1f64;
    for class in 0..2 {
        let n_cal = icp.calibration_count(class) as f64;
        let target = (epsilon * (n_cal + 1.0)).floor() / (n_cal + 1.0);
        let errors = (0..TEST_PER_CLASS)
            .filter(|_| {
                let score = draw_score(&mut rng, class);
                icp.p_value(class, score) <= epsilon
            })
            .count() as f64;
        let rate = errors / TEST_PER_CLASS as f64;
        let sigma = (target * (1.0 - target) / TEST_PER_CLASS as f64).sqrt();
        assert!(
            (rate - target).abs() <= 4.5 * sigma + 1e-3,
            "class {class}: error {rate:.4} vs target {target:.4}"
        );
    }
}
