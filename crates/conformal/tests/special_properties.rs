//! Property-based tests for the special functions and conformal machinery.

use noodle_conformal::special::{
    chi2_sf, ln_gamma, normal_cdf, normal_quantile, reg_gamma_p, reg_gamma_q,
};
use noodle_conformal::{Combiner, MondrianIcp};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// P(s, x) + Q(s, x) = 1 across the domain.
    #[test]
    fn gamma_partition(s in 0.1f64..50.0, x in 0.0f64..100.0) {
        let p = reg_gamma_p(s, x);
        let q = reg_gamma_q(s, x);
        prop_assert!((p + q - 1.0).abs() < 1e-8, "s={s} x={x}: {p}+{q}");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
    }

    /// P is monotone increasing in x.
    #[test]
    fn gamma_p_monotone(s in 0.1f64..20.0, x in 0.0f64..50.0, dx in 0.01f64..10.0) {
        prop_assert!(reg_gamma_p(s, x + dx) + 1e-10 >= reg_gamma_p(s, x));
    }

    /// Γ(x+1) = x Γ(x) (in log form).
    #[test]
    fn gamma_recurrence(x in 0.1f64..30.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8, "x={x}: {lhs} vs {rhs}");
    }

    /// chi2 survival decreases in x and lives in [0, 1].
    #[test]
    fn chi2_sf_monotone(x in 0.0f64..100.0, dx in 0.01f64..10.0, dof in 1u32..40) {
        let a = chi2_sf(x, dof);
        let b = chi2_sf(x + dx, dof);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(b <= a + 1e-10);
    }

    /// The normal CDF and quantile are mutual inverses.
    #[test]
    fn normal_inverse_pair(p in 0.0005f64..0.9995) {
        let z = normal_quantile(p);
        prop_assert!((normal_cdf(z) - p).abs() < 2e-4, "p={p}, z={z}");
    }

    /// The Mondrian p-value of the true class is super-uniform on
    /// exchangeable data: P(p <= eps) <= eps. The guarantee is *marginal*
    /// over calibration draws, so the property averages over several
    /// calibration sets rather than conditioning on one.
    #[test]
    fn mondrian_super_uniformity(seed in 0u64..200, eps in 0.05f64..0.5) {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hits = 0usize;
        let mut total = 0usize;
        for _ in 0..16 {
            let calib: Vec<(f32, usize)> =
                (0..120).map(|i| (rng.random_range(0.0..1.0f32), i % 2)).collect();
            let icp = MondrianIcp::fit(&calib, 2).unwrap();
            for i in 0..300 {
                let score: f32 = rng.random_range(0.0..1.0);
                if icp.p_value(i % 2, score) <= eps {
                    hits += 1;
                }
                total += 1;
            }
        }
        let rate = hits as f64 / total as f64;
        // Slack sized at ~5 standard deviations of the dominant variance
        // term (conditional rate variation across 16 calibration sets of
        // 60 per class), so false alarms are vanishingly rare while a
        // validity bug would still trip the bound.
        let slack = 0.03 + 5.0 * (eps * (1.0 - eps) / (60.0 * 16.0)).sqrt();
        prop_assert!(rate <= eps + slack, "rate {rate} >> eps {eps} (+{slack:.3})");
    }

    /// Fisher's combination of uniform p-values is itself super-uniform.
    #[test]
    fn fisher_validity(seed in 0u64..200) {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 800;
        let mut hits = 0usize;
        let eps = 0.1;
        for _ in 0..n {
            let p1: f64 = rng.random_range(0.0..1.0);
            let p2: f64 = rng.random_range(0.0..1.0);
            if Combiner::Fisher.combine(&[p1, p2]) <= eps {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        prop_assert!(rate <= eps + 0.05, "Fisher under the null: rate {rate}");
    }
}
