//! Conformal prediction regions and hedged point predictions.

use serde::{Deserialize, Serialize};

/// A conformal prediction for one test example: the per-class p-values and
/// the derived region/point views.
///
/// Terminology follows the paper's Algorithm 1: at confidence level `E` the
/// region `r_E` contains every class whose p-value exceeds `1 - E`
/// (equivalently, significance `ε = 1 - E`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConformalPrediction {
    p_values: Vec<f64>,
}

impl ConformalPrediction {
    /// Wraps per-class p-values.
    ///
    /// # Panics
    ///
    /// Panics if `p_values` is empty or any value is outside `(0, 1]`.
    pub fn new(p_values: Vec<f64>) -> Self {
        assert!(!p_values.is_empty(), "need at least one class");
        for &p in &p_values {
            assert!(p > 0.0 && p <= 1.0, "p-value {p} outside (0, 1]");
        }
        Self { p_values }
    }

    /// The per-class p-values.
    pub fn p_values(&self) -> &[f64] {
        &self.p_values
    }

    /// The prediction region at significance `epsilon`: all classes with
    /// `p > epsilon`.
    pub fn region(&self, epsilon: f64) -> Vec<usize> {
        self.p_values.iter().enumerate().filter(|(_, &p)| p > epsilon).map(|(c, _)| c).collect()
    }

    /// The paper's `r_E`: the region at confidence `E` (significance
    /// `1 - E`).
    pub fn region_at_confidence(&self, confidence: f64) -> Vec<usize> {
        self.region(1.0 - confidence)
    }

    /// The hedged point prediction: the class with the highest p-value.
    pub fn point_prediction(&self) -> usize {
        let mut best = 0;
        for (c, &p) in self.p_values.iter().enumerate() {
            if p > self.p_values[best] {
                best = c;
            }
        }
        best
    }

    /// Credibility: the largest p-value (how typical the example is of the
    /// predicted class).
    pub fn credibility(&self) -> f64 {
        self.p_values.iter().copied().fold(0.0, f64::max)
    }

    /// Confidence: one minus the second-largest p-value (how decisively the
    /// runner-up class is rejected). `1.0` for single-class problems.
    pub fn confidence(&self) -> f64 {
        if self.p_values.len() < 2 {
            return 1.0;
        }
        let mut sorted = self.p_values.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("p-values are finite"));
        1.0 - sorted[1]
    }

    /// Whether the region at significance `epsilon` is uncertain (contains
    /// more than one class).
    pub fn is_uncertain(&self, epsilon: f64) -> bool {
        self.region(epsilon).len() > 1
    }

    /// Whether the region at significance `epsilon` is empty (the example
    /// looks unlike every class — itself a strong anomaly signal).
    pub fn is_empty_region(&self, epsilon: f64) -> bool {
        self.region(epsilon).is_empty()
    }
}

/// Aggregate efficiency/validity statistics of conformal predictions on a
/// labelled evaluation set at a fixed significance level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionStats {
    /// The significance level ε the stats were computed at.
    pub epsilon: f64,
    /// Fraction of examples whose region missed the true label (validity
    /// requires this to be ≤ ε in the long run).
    pub error_rate: f64,
    /// Mean region size (efficiency; 1.0 is ideal).
    pub mean_region_size: f64,
    /// Fraction of singleton regions.
    pub singleton_rate: f64,
    /// Fraction of empty regions.
    pub empty_rate: f64,
    /// Fraction of multi-label (uncertain) regions.
    pub uncertain_rate: f64,
}

/// Computes [`RegionStats`] over labelled predictions.
///
/// # Panics
///
/// Panics if the two slices differ in length or are empty.
pub fn region_stats(
    predictions: &[ConformalPrediction],
    labels: &[usize],
    epsilon: f64,
) -> RegionStats {
    assert_eq!(predictions.len(), labels.len(), "predictions and labels must align");
    assert!(!predictions.is_empty(), "need at least one prediction");
    let n = predictions.len() as f64;
    let mut errors = 0usize;
    let mut size_sum = 0usize;
    let mut singletons = 0usize;
    let mut empties = 0usize;
    let mut uncertain = 0usize;
    for (pred, &label) in predictions.iter().zip(labels) {
        let region = pred.region(epsilon);
        if !region.contains(&label) {
            errors += 1;
        }
        size_sum += region.len();
        match region.len() {
            0 => empties += 1,
            1 => singletons += 1,
            _ => uncertain += 1,
        }
    }
    RegionStats {
        epsilon,
        error_rate: errors as f64 / n,
        mean_region_size: size_sum as f64 / n,
        singleton_rate: singletons as f64 / n,
        empty_rate: empties as f64 / n,
        uncertain_rate: uncertain as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_thresholding() {
        let pred = ConformalPrediction::new(vec![0.8, 0.04]);
        assert_eq!(pred.region(0.05), vec![0]);
        assert_eq!(pred.region(0.01), vec![0, 1]);
        assert_eq!(pred.region(0.9), Vec::<usize>::new());
        assert_eq!(pred.region_at_confidence(0.95), vec![0]);
    }

    #[test]
    fn point_prediction_is_argmax() {
        let pred = ConformalPrediction::new(vec![0.3, 0.7]);
        assert_eq!(pred.point_prediction(), 1);
    }

    #[test]
    fn credibility_and_confidence() {
        let pred = ConformalPrediction::new(vec![0.7, 0.2]);
        assert!((pred.credibility() - 0.7).abs() < 1e-12);
        assert!((pred.confidence() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn uncertainty_flags() {
        let pred = ConformalPrediction::new(vec![0.6, 0.5]);
        assert!(pred.is_uncertain(0.4));
        assert!(!pred.is_uncertain(0.55));
        assert!(pred.is_empty_region(0.7));
    }

    #[test]
    fn stats_on_perfect_predictor() {
        let preds = vec![
            ConformalPrediction::new(vec![0.9, 0.01]),
            ConformalPrediction::new(vec![0.02, 0.8]),
        ];
        let s = region_stats(&preds, &[0, 1], 0.05);
        assert_eq!(s.error_rate, 0.0);
        assert_eq!(s.mean_region_size, 1.0);
        assert_eq!(s.singleton_rate, 1.0);
        assert_eq!(s.empty_rate, 0.0);
        assert_eq!(s.uncertain_rate, 0.0);
    }

    #[test]
    fn stats_count_misses() {
        let preds = vec![ConformalPrediction::new(vec![0.01, 0.9])];
        let s = region_stats(&preds, &[0], 0.05);
        assert_eq!(s.error_rate, 1.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn rejects_invalid_p_values() {
        let _ = ConformalPrediction::new(vec![0.0, 0.5]);
    }
}
