//! # noodle-conformal
//!
//! Mondrian inductive conformal prediction (ICP) with p-value combination —
//! the uncertainty-quantification engine of the NOODLE pipeline
//! (Algorithm 1 of the paper).
//!
//! Each modality's classifier becomes a conformal predictor by calibrating
//! nonconformity scores on a held-out split; label-conditional (Mondrian)
//! calibration guarantees per-class validity even under the heavy class
//! imbalance of Trojan detection. Per-modality p-values are fused with a
//! [`Combiner`] (Fisher, Stouffer, …) into a combined hypothesis test per
//! class, yielding calibrated prediction regions.
//!
//! ## Quickstart
//!
//! ```
//! use noodle_conformal::{Combiner, ConformalPrediction, MondrianIcp};
//!
//! # fn main() -> Result<(), noodle_conformal::ConformalError> {
//! // Two modalities, each with its own calibrated conformal predictor.
//! let icp_graph = MondrianIcp::fit(&[(0.1, 0), (0.2, 0), (0.7, 1), (0.8, 1)], 2)?;
//! let icp_tab = MondrianIcp::fit(&[(0.2, 0), (0.3, 0), (0.6, 1), (0.9, 1)], 2)?;
//! // Per-class p-values of one test design from each modality...
//! let p_graph = icp_graph.p_values(&[0.15, 0.95]);
//! let p_tab = icp_tab.p_values(&[0.25, 0.85]);
//! // ...fused per class with Fisher's method (late fusion):
//! let fused: Vec<f64> = (0..2)
//!     .map(|c| Combiner::Fisher.combine(&[p_graph[c], p_tab[c]]))
//!     .collect();
//! let prediction = ConformalPrediction::new(fused);
//! assert_eq!(prediction.point_prediction(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod combine;
mod error;
mod icp;
mod region;
pub mod special;

pub use combine::Combiner;
pub use error::ConformalError;
pub use icp::{nonconformity_from_proba, MondrianIcp};
pub use region::{region_stats, ConformalPrediction, RegionStats};
