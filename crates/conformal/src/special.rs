//! Special functions needed for p-value combination: log-gamma, the
//! regularized incomplete gamma function, the chi-square survival function
//! and the standard normal CDF/quantile.
//!
//! Implementations follow the classic Lanczos / Numerical-Recipes forms and
//! are unit-tested against reference values.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(s, x)`.
///
/// # Panics
///
/// Panics if `s <= 0` or `x < 0`.
pub fn reg_gamma_p(s: f64, x: f64) -> f64 {
    assert!(s > 0.0, "shape must be positive");
    assert!(x >= 0.0, "argument must be non-negative");
    if x == 0.0 {
        return 0.0;
    }
    if x < s + 1.0 {
        // Series representation.
        let mut term = 1.0 / s;
        let mut sum = term;
        let mut n = s;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + s * x.ln() - x - ln_gamma(s)).exp()
    } else {
        1.0 - reg_gamma_q_cf(s, x)
    }
}

/// Regularized upper incomplete gamma function `Q(s, x) = 1 - P(s, x)`.
///
/// # Panics
///
/// Panics if `s <= 0` or `x < 0`.
pub fn reg_gamma_q(s: f64, x: f64) -> f64 {
    assert!(s > 0.0, "shape must be positive");
    assert!(x >= 0.0, "argument must be non-negative");
    if x == 0.0 {
        return 1.0;
    }
    if x < s + 1.0 {
        1.0 - reg_gamma_p(s, x)
    } else {
        reg_gamma_q_cf(s, x)
    }
}

/// Continued-fraction evaluation of `Q(s, x)`, valid for `x >= s + 1`.
fn reg_gamma_q_cf(s: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - s;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - s);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (s * x.ln() - x - ln_gamma(s)).exp() * h
}

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom: `P(X >= x)`.
///
/// # Panics
///
/// Panics if `dof == 0` or `x < 0`.
pub fn chi2_sf(x: f64, dof: u32) -> f64 {
    assert!(dof > 0, "degrees of freedom must be positive");
    reg_gamma_q(dof as f64 / 2.0, x / 2.0)
}

/// Standard normal CDF via the complementary error function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function (W. J. Cody–style rational approximation,
/// accurate to ~1e-7 absolute which is ample for p-value work).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal quantile function (inverse CDF), Acklam's algorithm.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_of_integers() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &s in &[0.5, 1.0, 2.5, 10.0] {
            for &x in &[0.1, 1.0, 5.0, 20.0] {
                let p = reg_gamma_p(s, x);
                let q = reg_gamma_q(s, x);
                assert!((p + q - 1.0).abs() < 1e-9, "s={s} x={x}: {p} + {q}");
            }
        }
    }

    #[test]
    fn chi2_sf_reference_values() {
        // chi2 with 2 dof is Exp(1/2): SF(x) = exp(-x/2).
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            assert!((chi2_sf(x, 2) - (-x / 2.0f64).exp()).abs() < 1e-9);
        }
        // chi2(1): SF(3.841) ≈ 0.05
        assert!((chi2_sf(3.841, 1) - 0.05).abs() < 1e-3);
        // chi2(4): SF(9.488) ≈ 0.05
        assert!((chi2_sf(9.488, 4) - 0.05).abs() < 1e-3);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.01, 0.05, 0.25, 0.5, 0.9, 0.99] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-4, "p={p}, z={z}");
        }
    }

    #[test]
    fn quantile_known_points() {
        assert!(normal_quantile(0.5).abs() < 1e-8);
        assert!((normal_quantile(0.975) - 1.959_96).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "p in (0, 1)")]
    fn quantile_rejects_bounds() {
        let _ = normal_quantile(0.0);
    }
}
