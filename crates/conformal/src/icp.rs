//! Mondrian (label-conditional) inductive conformal prediction.

use serde::{Deserialize, Serialize};

use crate::error::ConformalError;

/// A fitted Mondrian inductive conformal predictor.
///
/// Calibration nonconformity scores are stored per class (the "Mondrian"
/// taxonomy), which guarantees label-conditional validity: for every class,
/// the long-run error rate at significance ε does not exceed ε — crucial
/// here because Trojan-infected designs are the rare minority class and
/// would otherwise absorb a disproportionate share of errors.
///
/// # Examples
///
/// ```
/// use noodle_conformal::MondrianIcp;
///
/// # fn main() -> Result<(), noodle_conformal::ConformalError> {
/// // Calibration scores for a 2-class problem: (nonconformity, label).
/// let icp = MondrianIcp::fit(
///     &[(0.1, 0), (0.2, 0), (0.3, 0), (0.15, 1), (0.4, 1)],
///     2,
/// )?;
/// // P-value of a test score hypothesized to belong to class 0.
/// let p = icp.p_value(0, 0.25);
/// assert!(p > 0.0 && p <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MondrianIcp {
    /// Sorted calibration scores per class.
    calibration: Vec<Vec<f32>>,
}

impl MondrianIcp {
    /// Fits the predictor from `(nonconformity_score, label)` calibration
    /// pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ConformalError`] if `n_classes` is zero, any label is out
    /// of range, any score is non-finite, or some class has no calibration
    /// examples (its p-values would be vacuous).
    pub fn fit(scores: &[(f32, usize)], n_classes: usize) -> Result<Self, ConformalError> {
        if n_classes == 0 {
            return Err(ConformalError::new("number of classes must be positive"));
        }
        let mut calibration = vec![Vec::new(); n_classes];
        for &(score, label) in scores {
            if label >= n_classes {
                return Err(ConformalError::new(format!(
                    "label {label} out of range for {n_classes} classes"
                )));
            }
            if !score.is_finite() {
                return Err(ConformalError::new("nonconformity scores must be finite"));
            }
            calibration[label].push(score);
        }
        for (class, scores) in calibration.iter().enumerate() {
            if scores.is_empty() {
                return Err(ConformalError::new(format!(
                    "class {class} has no calibration examples"
                )));
            }
        }
        for scores in &mut calibration {
            scores.sort_by(|a, b| a.partial_cmp(b).expect("scores are finite"));
        }
        if noodle_telemetry::enabled() {
            noodle_telemetry::counter_add("icp.calibrations", 1);
            noodle_telemetry::counter_add("icp.calibration_scores", scores.len() as u64);
            for &(score, _) in scores {
                noodle_telemetry::histogram_record("icp.nonconformity", score as f64);
            }
        }
        Ok(Self { calibration })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.calibration.len()
    }

    /// Number of calibration examples for `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn calibration_count(&self, class: usize) -> usize {
        self.calibration[class].len()
    }

    /// The sorted calibration nonconformity scores for `class`.
    ///
    /// Exposed so callers can snapshot the calibration distribution at fit
    /// time — e.g. to persist a drift-detection baseline alongside the
    /// model (`noodle-observe` bins these into a PSI reference).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn calibration_scores(&self, class: usize) -> &[f32] {
        &self.calibration[class]
    }

    /// The smoothed-free conformal p-value of hypothesis "the test example
    /// with nonconformity `score` belongs to `class`":
    /// `(#{calibration scores of class >= score} + 1) / (n_class + 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn p_value(&self, class: usize, score: f32) -> f64 {
        let scores = &self.calibration[class];
        // scores is sorted ascending; count >= score via partition point.
        let below = scores.partition_point(|&s| s < score);
        let geq = scores.len() - below;
        (geq as f64 + 1.0) / (scores.len() as f64 + 1.0)
    }

    /// P-values for every class given per-class nonconformity scores of one
    /// test example.
    ///
    /// # Panics
    ///
    /// Panics if `scores.len() != self.n_classes()`.
    pub fn p_values(&self, scores: &[f32]) -> Vec<f64> {
        assert_eq!(scores.len(), self.n_classes(), "need one nonconformity score per class");
        scores.iter().enumerate().map(|(c, &s)| self.p_value(c, s)).collect()
    }
}

/// The standard probability-based nonconformity score used by NOODLE's
/// CNN conformal predictors: `NS(x, y) = 1 - p̂_y(x)` (Eq. 4 with a single
/// classifier; for an ensemble the scores sum).
pub fn nonconformity_from_proba(proba_of_label: f32) -> f32 {
    1.0 - proba_of_label
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_icp() -> MondrianIcp {
        MondrianIcp::fit(&[(0.1, 0), (0.2, 0), (0.3, 0), (0.4, 0), (0.5, 1), (0.6, 1)], 2).unwrap()
    }

    #[test]
    fn p_value_formula() {
        let icp = simple_icp();
        // class 0 scores: [0.1, 0.2, 0.3, 0.4], n = 4.
        // score 0.25 → 2 scores >= → p = 3/5.
        assert!((icp.p_value(0, 0.25) - 0.6).abs() < 1e-9);
        // score below all → p = 5/5 = 1.
        assert!((icp.p_value(0, 0.0) - 1.0).abs() < 1e-9);
        // score above all → p = 1/5.
        assert!((icp.p_value(0, 0.9) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn ties_count_as_geq() {
        let icp = simple_icp();
        // score exactly 0.2: scores >= 0.2 are {0.2, 0.3, 0.4} → p = 4/5.
        assert!((icp.p_value(0, 0.2) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn p_values_bounded() {
        let icp = simple_icp();
        for &s in &[-1.0f32, 0.0, 0.35, 2.0] {
            for c in 0..2 {
                let p = icp.p_value(c, s);
                assert!(p > 0.0 && p <= 1.0, "p = {p}");
            }
        }
    }

    #[test]
    fn minimum_p_value_is_one_over_n_plus_one() {
        let icp = simple_icp();
        // class 1 has n = 2, so min possible p is 1/3.
        assert!((icp.p_value(1, 100.0) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_scores_are_sorted_snapshots() {
        let icp = MondrianIcp::fit(&[(0.3, 0), (0.1, 0), (0.2, 0), (0.6, 1), (0.5, 1)], 2).unwrap();
        assert_eq!(icp.calibration_scores(0), &[0.1, 0.2, 0.3]);
        assert_eq!(icp.calibration_scores(1), &[0.5, 0.6]);
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(MondrianIcp::fit(&[(0.1, 0)], 0).is_err());
        assert!(MondrianIcp::fit(&[(0.1, 2)], 2).is_err());
        assert!(MondrianIcp::fit(&[(f32::NAN, 0)], 1).is_err());
        // class 1 empty:
        assert!(MondrianIcp::fit(&[(0.1, 0)], 2).is_err());
    }

    #[test]
    fn p_values_vector_matches_classes() {
        let icp = simple_icp();
        let ps = icp.p_values(&[0.25, 0.55]);
        assert_eq!(ps.len(), 2);
        assert!((ps[0] - 0.6).abs() < 1e-9);
        assert!((ps[1] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn nonconformity_is_one_minus_proba() {
        assert_eq!(nonconformity_from_proba(1.0), 0.0);
        assert_eq!(nonconformity_from_proba(0.25), 0.75);
    }

    #[test]
    fn validity_on_exchangeable_data() {
        // Draw calibration and test scores from the same distribution; the
        // fraction of test examples whose true-class p-value <= ε must be
        // close to (and long-run at most) ε.
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let calib: Vec<(f32, usize)> =
            (0..400).map(|i| (rng.random_range(0.0..1.0f32), i % 2)).collect();
        let icp = MondrianIcp::fit(&calib, 2).unwrap();
        for &eps in &[0.05f64, 0.1, 0.2] {
            let mut errors = 0usize;
            let n = 4000;
            for i in 0..n {
                let label = i % 2;
                let score: f32 = rng.random_range(0.0..1.0);
                if icp.p_value(label, score) <= eps {
                    errors += 1;
                }
            }
            let rate = errors as f64 / n as f64;
            assert!(rate < eps + 0.03, "error rate {rate} exceeds significance {eps} by too much");
        }
    }
}
