//! P-value combination methods for uncertainty-aware information fusion.
//!
//! Following Balasubramanian et al., *Conformal predictions for information
//! fusion* (AMAI 2015) — the method the NOODLE paper builds its Algorithm 1
//! on — each modality's conformal predictor yields a p-value per class, and
//! a combination function turns the N per-modality p-values into a single
//! test statistic for the combined null hypothesis.
//!
//! All combiners here are *valid* in the sense that if every input p-value
//! is super-uniform under the null, the output is too (Fisher and Stouffer
//! exactly for independent inputs; min/max/means via the standard
//! correction factors).

use serde::{Deserialize, Serialize};

use crate::special::{chi2_sf, normal_cdf, normal_quantile};

/// A p-value combination method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Combiner {
    /// Fisher's method: `-2 Σ ln p ~ χ²(2N)`.
    Fisher,
    /// Stouffer's method: `Σ Φ⁻¹(1-p) / √N ~ N(0,1)`.
    Stouffer,
    /// Bonferroni-corrected minimum: `min(1, N · min p)`.
    Min,
    /// Maximum raised to the count: `(max p)^N`.
    Max,
    /// Twice the arithmetic mean, clipped to 1.
    ArithmeticMean,
    /// Euler-corrected geometric mean: `min(1, e · (Π p)^(1/N))`.
    GeometricMean,
}

impl Combiner {
    /// Every combiner, in a stable order.
    pub const ALL: [Combiner; 6] = [
        Combiner::Fisher,
        Combiner::Stouffer,
        Combiner::Min,
        Combiner::Max,
        Combiner::ArithmeticMean,
        Combiner::GeometricMean,
    ];

    /// A short lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Combiner::Fisher => "fisher",
            Combiner::Stouffer => "stouffer",
            Combiner::Min => "min",
            Combiner::Max => "max",
            Combiner::ArithmeticMean => "arith_mean",
            Combiner::GeometricMean => "geo_mean",
        }
    }

    /// Combines per-modality p-values into one p-value.
    ///
    /// Inputs are clamped to `[1e-12, 1]` to keep logs finite; the output is
    /// always in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p_values` is empty.
    pub fn combine(self, p_values: &[f64]) -> f64 {
        assert!(!p_values.is_empty(), "cannot combine zero p-values");
        let ps: Vec<f64> = p_values.iter().map(|&p| p.clamp(1e-12, 1.0)).collect();
        let n = ps.len() as f64;
        let combined = match self {
            Combiner::Fisher => {
                let stat: f64 = -2.0 * ps.iter().map(|p| p.ln()).sum::<f64>();
                chi2_sf(stat, 2 * ps.len() as u32)
            }
            Combiner::Stouffer => {
                let z: f64 = ps
                    .iter()
                    .map(|&p| normal_quantile((1.0 - p).clamp(1e-12, 1.0 - 1e-12)))
                    .sum::<f64>()
                    / n.sqrt();
                1.0 - normal_cdf(z)
            }
            Combiner::Min => {
                let min = ps.iter().copied().fold(f64::INFINITY, f64::min);
                (n * min).min(1.0)
            }
            Combiner::Max => {
                let max = ps.iter().copied().fold(0.0, f64::max);
                max.powf(n)
            }
            Combiner::ArithmeticMean => {
                let mean = ps.iter().sum::<f64>() / n;
                (2.0 * mean).min(1.0)
            }
            Combiner::GeometricMean => {
                let geo = (ps.iter().map(|p| p.ln()).sum::<f64>() / n).exp();
                (std::f64::consts::E * geo).min(1.0)
            }
        };
        combined.clamp(1e-300, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fisher_two_halves() {
        // -2 (ln .5 + ln .5) = 2.772..; chi2(4) SF at 2.772 ≈ 0.597.
        let p = Combiner::Fisher.combine(&[0.5, 0.5]);
        assert!((p - 0.5966).abs() < 1e-3, "p = {p}");
    }

    #[test]
    fn fisher_small_inputs_stay_small() {
        let p = Combiner::Fisher.combine(&[0.01, 0.01]);
        assert!(p < 0.01, "p = {p}");
        let p1 = Combiner::Fisher.combine(&[0.01, 0.9]);
        assert!(p1 > p, "conflicting evidence should weaken the combination");
    }

    #[test]
    fn stouffer_agrees_at_half() {
        let p = Combiner::Stouffer.combine(&[0.5, 0.5]);
        assert!((p - 0.5).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn stouffer_strengthens_agreement() {
        let single = 0.05;
        let combined = Combiner::Stouffer.combine(&[single, single]);
        assert!(combined < single, "combined {combined} should beat single {single}");
    }

    #[test]
    fn min_is_bonferroni() {
        assert!((Combiner::Min.combine(&[0.02, 0.5]) - 0.04).abs() < 1e-12);
        assert_eq!(Combiner::Min.combine(&[0.9, 0.8]), 1.0);
    }

    #[test]
    fn max_powers_up() {
        assert!((Combiner::Max.combine(&[0.5, 0.9]) - 0.81).abs() < 1e-12);
    }

    #[test]
    fn means_are_clipped_to_one() {
        assert_eq!(Combiner::ArithmeticMean.combine(&[0.9, 0.9]), 1.0);
        assert!((Combiner::ArithmeticMean.combine(&[0.1, 0.3]) - 0.4).abs() < 1e-12);
        assert_eq!(Combiner::GeometricMean.combine(&[1.0, 1.0]), 1.0);
    }

    #[test]
    fn all_combiners_bounded_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let k = rng.random_range(1..5usize);
            let ps: Vec<f64> = (0..k).map(|_| rng.random_range(0.0..1.0)).collect();
            for c in Combiner::ALL {
                let p = c.combine(&ps);
                assert!(p > 0.0 && p <= 1.0, "{}: {p} from {ps:?}", c.name());
            }
        }
    }

    #[test]
    fn single_input_is_near_identity_for_fisher() {
        // With N = 1, Fisher reduces to chi2(2) SF of -2 ln p = p exactly.
        for &p in &[0.01, 0.25, 0.7] {
            let c = Combiner::Fisher.combine(&[p]);
            assert!((c - p).abs() < 1e-9, "{c} vs {p}");
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = Combiner::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Combiner::ALL.len());
    }

    #[test]
    #[should_panic(expected = "zero p-values")]
    fn empty_input_panics() {
        let _ = Combiner::Fisher.combine(&[]);
    }
}
