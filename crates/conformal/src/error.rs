//! Error type for conformal prediction.

use std::fmt;

/// An error produced while fitting or evaluating a conformal predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformalError {
    message: String,
}

impl ConformalError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for ConformalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conformal prediction error: {}", self.message)
    }
}

impl std::error::Error for ConformalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ConformalError::new("class 1 has no calibration examples");
        assert!(e.to_string().contains("class 1"));
    }
}
