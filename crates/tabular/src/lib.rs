//! # noodle-tabular
//!
//! The *tabular* (Euclidean) modality of the NOODLE pipeline: a fixed-length
//! vector of code-branching and structural features extracted from the AST
//! of an RTL design, in the spirit of the TrustHub code-branching feature
//! set (Salmani et al.) the paper trains on.
//!
//! Several features deliberately capture the static signatures RTL Trojans
//! tend to leave: comparisons against wide constants (rare-value triggers),
//! self-incrementing registers (time bombs), ternary multiplexers on output
//! drivers (payload hijack), and deep conditional nesting.
//!
//! ## Quickstart
//!
//! ```
//! use noodle_tabular::{extract_features, FEATURE_NAMES};
//!
//! # fn main() -> Result<(), noodle_verilog::ParseError> {
//! let file = noodle_verilog::parse(
//!     "module m(input clk, input [7:0] d, output reg [7:0] q);
//!        always @(posedge clk) if (d == 8'hA5) q <= 8'd0; else q <= d;
//!      endmodule",
//! )?;
//! let features = extract_features(&file.modules[0]);
//! let vector = features.to_vec();
//! assert_eq!(vector.len(), FEATURE_NAMES.len());
//! assert_eq!(features.const_comparisons, 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod features;

pub use features::{extract_features, TabularFeatures, FEATURE_NAMES};
