//! Code-branching feature extraction.

use noodle_verilog::{
    BinaryOp, EventControl, Expr, Item, LValue, Module, NetType, PortDirection, Stmt, UnaryOp,
};
use serde::{Deserialize, Serialize};

/// Names of the features, in the order produced by
/// [`TabularFeatures::to_vec`].
pub const FEATURE_NAMES: [&str; 28] = [
    "inputs",
    "outputs",
    "input_bits",
    "output_bits",
    "wires",
    "regs",
    "reg_bits",
    "assigns",
    "always_blocks",
    "clocked_always",
    "comb_always",
    "if_count",
    "else_count",
    "max_if_depth",
    "case_count",
    "case_arm_count",
    "case_default_count",
    "blocking_assigns",
    "nonblocking_assigns",
    "instances",
    "ternaries",
    "xor_ops",
    "eq_comparisons",
    "const_comparisons",
    "max_const_cmp_width",
    "self_increment_regs",
    "expr_nodes",
    "max_expr_depth",
];

/// The code-branching tabular feature vector of one module.
///
/// All fields are `f32` counts/widths so the struct converts losslessly to
/// the model input vector.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct TabularFeatures {
    pub inputs: f32,
    pub outputs: f32,
    pub input_bits: f32,
    pub output_bits: f32,
    pub wires: f32,
    pub regs: f32,
    pub reg_bits: f32,
    pub assigns: f32,
    pub always_blocks: f32,
    pub clocked_always: f32,
    pub comb_always: f32,
    pub if_count: f32,
    pub else_count: f32,
    pub max_if_depth: f32,
    pub case_count: f32,
    pub case_arm_count: f32,
    pub case_default_count: f32,
    pub blocking_assigns: f32,
    pub nonblocking_assigns: f32,
    pub instances: f32,
    pub ternaries: f32,
    pub xor_ops: f32,
    pub eq_comparisons: f32,
    pub const_comparisons: f32,
    pub max_const_cmp_width: f32,
    pub self_increment_regs: f32,
    pub expr_nodes: f32,
    pub max_expr_depth: f32,
}

impl TabularFeatures {
    /// The features as a vector ordered like [`FEATURE_NAMES`].
    pub fn to_vec(&self) -> Vec<f32> {
        vec![
            self.inputs,
            self.outputs,
            self.input_bits,
            self.output_bits,
            self.wires,
            self.regs,
            self.reg_bits,
            self.assigns,
            self.always_blocks,
            self.clocked_always,
            self.comb_always,
            self.if_count,
            self.else_count,
            self.max_if_depth,
            self.case_count,
            self.case_arm_count,
            self.case_default_count,
            self.blocking_assigns,
            self.nonblocking_assigns,
            self.instances,
            self.ternaries,
            self.xor_ops,
            self.eq_comparisons,
            self.const_comparisons,
            self.max_const_cmp_width,
            self.self_increment_regs,
            self.expr_nodes,
            self.max_expr_depth,
        ]
    }

    /// Number of features (the length of [`FEATURE_NAMES`]).
    pub const fn len() -> usize {
        FEATURE_NAMES.len()
    }
}

/// Extracts the code-branching feature vector of a module.
pub fn extract_features(module: &Module) -> TabularFeatures {
    let _timer = noodle_telemetry::time_histogram("tabular.extract_us");
    noodle_telemetry::counter_add("tabular.extractions", 1);
    let mut f = TabularFeatures::default();

    for port in module.resolved_ports() {
        let bits = port.range.map(|r| r.width()).unwrap_or(1) as f32;
        match port.direction {
            PortDirection::Input => {
                f.inputs += 1.0;
                f.input_bits += bits;
            }
            PortDirection::Output => {
                f.outputs += 1.0;
                f.output_bits += bits;
            }
            PortDirection::Inout | PortDirection::Unspecified => {}
        }
    }

    for item in &module.items {
        match item {
            Item::Decl { net, range, names } => {
                let bits = range.map(|r| r.width()).unwrap_or(1) as f32 * names.len() as f32;
                match net {
                    NetType::Wire => f.wires += names.len() as f32,
                    NetType::Reg | NetType::Integer => {
                        f.regs += names.len() as f32;
                        f.reg_bits += bits;
                    }
                }
            }
            Item::Assign { rhs, .. } => {
                f.assigns += 1.0;
                scan_expr(&mut f, rhs, 1);
            }
            Item::Always { event, body } => {
                f.always_blocks += 1.0;
                match event {
                    EventControl::Star => f.comb_always += 1.0,
                    EventControl::Events(events) => {
                        if events.iter().any(|e| e.edge.is_some()) {
                            f.clocked_always += 1.0;
                        } else {
                            f.comb_always += 1.0;
                        }
                    }
                }
                scan_stmt(&mut f, body, 0);
            }
            Item::Initial { body } => scan_stmt(&mut f, body, 0),
            Item::Instance { connections, .. } => {
                f.instances += 1.0;
                for c in connections {
                    if let Some(e) = &c.expr {
                        scan_expr(&mut f, e, 1);
                    }
                }
            }
            Item::Parameter { value, .. } | Item::Localparam { value, .. } => {
                scan_expr(&mut f, value, 1);
            }
            Item::PortDecl { .. } => {}
        }
    }
    f
}

fn scan_stmt(f: &mut TabularFeatures, stmt: &Stmt, if_depth: u32) {
    match stmt {
        Stmt::Block { stmts, .. } => {
            for s in stmts {
                scan_stmt(f, s, if_depth);
            }
        }
        Stmt::If { cond, then_branch, else_branch } => {
            f.if_count += 1.0;
            let depth = if_depth + 1;
            f.max_if_depth = f.max_if_depth.max(depth as f32);
            scan_expr(f, cond, 1);
            scan_stmt(f, then_branch, depth);
            if let Some(e) = else_branch {
                f.else_count += 1.0;
                scan_stmt(f, e, depth);
            }
        }
        Stmt::Case { subject, arms, default, .. } => {
            f.case_count += 1.0;
            scan_expr(f, subject, 1);
            for arm in arms {
                f.case_arm_count += 1.0;
                for l in &arm.labels {
                    scan_expr(f, l, 1);
                }
                scan_stmt(f, &arm.body, if_depth);
            }
            if let Some(d) = default {
                f.case_default_count += 1.0;
                scan_stmt(f, d, if_depth);
            }
        }
        Stmt::Blocking { lhs, rhs } => {
            f.blocking_assigns += 1.0;
            note_self_increment(f, lhs, rhs);
            scan_expr(f, rhs, 1);
        }
        Stmt::Nonblocking { lhs, rhs } => {
            f.nonblocking_assigns += 1.0;
            note_self_increment(f, lhs, rhs);
            scan_expr(f, rhs, 1);
        }
        Stmt::For { init, cond, step, body } => {
            scan_stmt(f, init, if_depth);
            scan_expr(f, cond, 1);
            scan_stmt(f, step, if_depth);
            scan_stmt(f, body, if_depth);
        }
        Stmt::SystemCall { args, .. } => {
            for a in args {
                scan_expr(f, a, 1);
            }
        }
        Stmt::Null => {}
    }
}

/// Detects the `x <= x + c` / `x = x + c` time-bomb-style pattern.
fn note_self_increment(f: &mut TabularFeatures, lhs: &LValue, rhs: &Expr) {
    let LValue::Ident(target) = lhs else { return };
    if let Expr::Binary { op: BinaryOp::Add, lhs: a, rhs: b } = rhs {
        let reads_self = matches!(&**a, Expr::Ident(n) if n == target)
            || matches!(&**b, Expr::Ident(n) if n == target);
        let adds_const = matches!(&**a, Expr::Literal(_)) || matches!(&**b, Expr::Literal(_));
        if reads_self && adds_const {
            f.self_increment_regs += 1.0;
        }
    }
}

fn scan_expr(f: &mut TabularFeatures, expr: &Expr, depth: u32) {
    f.expr_nodes += 1.0;
    f.max_expr_depth = f.max_expr_depth.max(depth as f32);
    match expr {
        Expr::Ident(_) | Expr::Literal(_) | Expr::Str(_) | Expr::Part { .. } => {}
        Expr::Bit { index, .. } => scan_expr(f, index, depth + 1),
        Expr::Unary { op, operand } => {
            if *op == UnaryOp::RedXor {
                f.xor_ops += 1.0;
            }
            scan_expr(f, operand, depth + 1);
        }
        Expr::Binary { op, lhs, rhs } => {
            match op {
                BinaryOp::BitXor | BinaryOp::BitXnor => f.xor_ops += 1.0,
                BinaryOp::Eq | BinaryOp::CaseEq => {
                    f.eq_comparisons += 1.0;
                    let const_width = literal_width(lhs).or_else(|| literal_width(rhs));
                    if let Some(w) = const_width {
                        f.const_comparisons += 1.0;
                        f.max_const_cmp_width = f.max_const_cmp_width.max(w as f32);
                    }
                }
                _ => {}
            }
            scan_expr(f, lhs, depth + 1);
            scan_expr(f, rhs, depth + 1);
        }
        Expr::Ternary { cond, then_expr, else_expr } => {
            f.ternaries += 1.0;
            scan_expr(f, cond, depth + 1);
            scan_expr(f, then_expr, depth + 1);
            scan_expr(f, else_expr, depth + 1);
        }
        Expr::Concat(parts) => {
            for p in parts {
                scan_expr(f, p, depth + 1);
            }
        }
        Expr::Repeat { expr, .. } => scan_expr(f, expr, depth + 1),
    }
}

fn literal_width(e: &Expr) -> Option<u32> {
    match e {
        Expr::Literal(l) => Some(l.width.unwrap_or(32)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noodle_verilog::parse;

    fn features_of(src: &str) -> TabularFeatures {
        let file = parse(src).unwrap();
        extract_features(&file.modules[0])
    }

    #[test]
    fn counts_ports_and_bits() {
        let f =
            features_of("module m(input clk, input [7:0] d, output [3:0] q, output v); endmodule");
        assert_eq!(f.inputs, 2.0);
        assert_eq!(f.outputs, 2.0);
        assert_eq!(f.input_bits, 9.0);
        assert_eq!(f.output_bits, 5.0);
    }

    #[test]
    fn counts_declarations() {
        let f = features_of("module m; wire a, b; reg [7:0] r1; reg r2; integer i; endmodule");
        assert_eq!(f.wires, 2.0);
        assert_eq!(f.regs, 3.0); // r1, r2, i
        assert_eq!(f.reg_bits, 10.0);
    }

    #[test]
    fn counts_branching() {
        let f = features_of(
            "module m(input a, input b, output reg y);
                always @* begin
                    if (a) begin
                        if (b) y = 1'b1; else y = 1'b0;
                    end else y = 1'b0;
                end
            endmodule",
        );
        assert_eq!(f.if_count, 2.0);
        assert_eq!(f.else_count, 2.0);
        assert_eq!(f.max_if_depth, 2.0);
        assert_eq!(f.blocking_assigns, 3.0);
    }

    #[test]
    fn counts_case_structure() {
        let f = features_of(
            "module m(input [1:0] s, output reg y);
                always @* case (s)
                    2'd0: y = 1'b0;
                    2'd1: y = 1'b1;
                    default: y = 1'b0;
                endcase
            endmodule",
        );
        assert_eq!(f.case_count, 1.0);
        assert_eq!(f.case_arm_count, 2.0);
        assert_eq!(f.case_default_count, 1.0);
    }

    #[test]
    fn detects_rare_value_trigger_signature() {
        let f = features_of(
            "module m(input [15:0] d, output t);
                assign t = d == 16'hCAFE;
            endmodule",
        );
        assert_eq!(f.eq_comparisons, 1.0);
        assert_eq!(f.const_comparisons, 1.0);
        assert_eq!(f.max_const_cmp_width, 16.0);
    }

    #[test]
    fn detects_time_bomb_signature() {
        let f = features_of(
            "module m(input clk, output [15:0] c);
                reg [15:0] cnt;
                always @(posedge clk) cnt <= cnt + 16'd1;
                assign c = cnt;
            endmodule",
        );
        assert_eq!(f.self_increment_regs, 1.0);
        assert_eq!(f.clocked_always, 1.0);
    }

    #[test]
    fn non_self_increment_not_counted() {
        let f = features_of(
            "module m(input clk, input [7:0] a, input [7:0] b, output reg [7:0] s);
                always @(posedge clk) s <= a + b;
            endmodule",
        );
        assert_eq!(f.self_increment_regs, 0.0);
    }

    #[test]
    fn counts_ternary_and_xor() {
        let f = features_of(
            "module m(input t, input [7:0] x, input [7:0] k, output [7:0] y);
                assign y = t ? x ^ k : x;
            endmodule",
        );
        assert_eq!(f.ternaries, 1.0);
        assert_eq!(f.xor_ops, 1.0);
    }

    #[test]
    fn vector_matches_names() {
        let f = features_of("module m(input a, output y); assign y = a; endmodule");
        assert_eq!(f.to_vec().len(), FEATURE_NAMES.len());
        assert_eq!(TabularFeatures::len(), FEATURE_NAMES.len());
    }

    #[test]
    fn feature_names_are_unique() {
        let mut names = FEATURE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FEATURE_NAMES.len());
    }

    #[test]
    fn trojaned_module_shifts_features() {
        let clean = features_of(
            "module m(input clk, input [7:0] d, output [7:0] q);
                reg [7:0] r;
                always @(posedge clk) r <= d;
                assign q = r;
            endmodule",
        );
        let infected = features_of(
            "module m(input clk, input [7:0] d, output [7:0] q);
                reg [7:0] r;
                reg [15:0] cal_cnt;
                wire cfg_match;
                always @(posedge clk) r <= d;
                always @(posedge clk) cal_cnt <= cal_cnt + 16'd1;
                assign cfg_match = cal_cnt == 16'hBEEF;
                assign q = cfg_match ? r ^ 8'h80 : r;
            endmodule",
        );
        assert!(infected.const_comparisons > clean.const_comparisons);
        assert!(infected.self_increment_regs > clean.self_increment_regs);
        assert!(infected.ternaries > clean.ternaries);
    }
}
