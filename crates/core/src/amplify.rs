//! Class-conditional GAN amplification of the multimodal dataset.
//!
//! Following the paper, Trojan-free and Trojan-infected samples are
//! segregated and a GAN is trained per class. The GAN operates on the
//! *concatenation* of both modalities so synthetic samples respect the
//! joint distribution of the observed modalities (Sec. III), and the
//! combined vector is split back into graph and tabular parts afterwards.

use noodle_gan::{amplify_class, GanConfig};
use noodle_nn::Tensor;
use rand::Rng;

use crate::dataset::{MultimodalDataset, MultimodalSample, GRAPH_DIM, TABULAR_DIM};

/// Amplifies every class of `dataset` to `target_per_class` samples with a
/// per-class GAN over the joint modality vector. Real samples are kept
/// verbatim; synthetic samples are appended with `synthetic = true`.
///
/// Classes already at or above the target are left unchanged.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn amplify_dataset<R: Rng + ?Sized>(
    dataset: &MultimodalDataset,
    target_per_class: usize,
    config: &GanConfig,
    rng: &mut R,
) -> MultimodalDataset {
    assert!(!dataset.is_empty(), "cannot amplify an empty dataset");
    let _span = noodle_telemetry::span!(
        "gan.amplify_dataset",
        real_samples = dataset.len(),
        target_per_class = target_per_class,
    );
    let max_label = dataset.samples().iter().map(|s| s.label).max().unwrap_or(0);
    let mut samples: Vec<MultimodalSample> = dataset.samples().to_vec();
    for label in 0..=max_label {
        let indices = dataset.class_indices(label);
        if indices.is_empty() || indices.len() >= target_per_class {
            continue;
        }
        let _class_span =
            noodle_telemetry::span!("gan.amplify", class = class_name(label), real = indices.len());
        let joint = joint_matrix(dataset, &indices);
        let grown = amplify_class(&joint, target_per_class, config, rng);
        noodle_telemetry::counter_add(
            "gan.synthetic_samples",
            (grown.shape()[0] - indices.len()) as u64,
        );
        // Rows beyond the real count are synthetic.
        for r in indices.len()..grown.shape()[0] {
            let row = grown.row(r);
            let mut graph = row[..GRAPH_DIM].to_vec();
            // Graph images live in [0, 1]; the GAN's inverse scaling keeps
            // the training range but clamp defensively.
            for v in &mut graph {
                *v = v.clamp(0.0, 1.0);
            }
            // Tabular features are counts; keep them non-negative.
            let tabular: Vec<f32> = row[GRAPH_DIM..].iter().map(|&v| v.max(0.0)).collect();
            samples.push(MultimodalSample {
                name: format!("syn_c{label}_{:03}", r - indices.len()),
                label,
                graph,
                tabular,
                synthetic: true,
            });
        }
    }
    MultimodalDataset::from_samples(samples)
}

/// Human-readable class name for span attributes (TF/TI for the binary
/// Trojan labels, the raw index otherwise).
fn class_name(label: usize) -> String {
    match label {
        0 => "TF".to_string(),
        1 => "TI".to_string(),
        other => other.to_string(),
    }
}

fn joint_matrix(dataset: &MultimodalDataset, indices: &[usize]) -> Tensor {
    let mut rows = Vec::with_capacity(indices.len());
    for &i in indices {
        let s = &dataset.samples()[i];
        let mut row = Vec::with_capacity(GRAPH_DIM + TABULAR_DIM);
        row.extend_from_slice(&s.graph);
        row.extend_from_slice(&s.tabular);
        rows.push(row);
    }
    Tensor::stack_rows(&rows).expect("all joint rows share one length")
}

#[cfg(test)]
mod tests {
    use super::*;
    use noodle_bench_gen::{generate_corpus, CorpusConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> GanConfig {
        GanConfig { epochs: 10, hidden_dim: 16, ..GanConfig::default() }
    }

    #[test]
    fn amplifies_both_classes_to_target() {
        let corpus =
            generate_corpus(&CorpusConfig { trojan_free: 10, trojan_infected: 4, seed: 1 });
        let ds = MultimodalDataset::from_benchmarks(&corpus).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let grown = amplify_dataset(&ds, 20, &small_config(), &mut rng);
        assert_eq!(grown.class_count(0), 20);
        assert_eq!(grown.class_count(1), 20);
        assert_eq!(grown.len(), 40);
    }

    #[test]
    fn real_samples_survive_unchanged() {
        let corpus = generate_corpus(&CorpusConfig { trojan_free: 6, trojan_infected: 3, seed: 2 });
        let ds = MultimodalDataset::from_benchmarks(&corpus).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let grown = amplify_dataset(&ds, 10, &small_config(), &mut rng);
        for (orig, kept) in ds.samples().iter().zip(grown.samples()) {
            assert_eq!(orig, kept);
        }
    }

    #[test]
    fn synthetic_samples_are_flagged_and_bounded() {
        let corpus = generate_corpus(&CorpusConfig { trojan_free: 6, trojan_infected: 3, seed: 3 });
        let ds = MultimodalDataset::from_benchmarks(&corpus).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let grown = amplify_dataset(&ds, 12, &small_config(), &mut rng);
        let synthetic: Vec<_> = grown.samples().iter().filter(|s| s.synthetic).collect();
        assert_eq!(synthetic.len(), grown.len() - ds.len());
        for s in synthetic {
            assert!(s.graph.iter().all(|&v| (0.0..=1.0).contains(&v)));
            assert!(s.tabular.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn oversize_class_untouched() {
        let corpus = generate_corpus(&CorpusConfig { trojan_free: 8, trojan_infected: 3, seed: 4 });
        let ds = MultimodalDataset::from_benchmarks(&corpus).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let grown = amplify_dataset(&ds, 5, &small_config(), &mut rng);
        assert_eq!(grown.class_count(0), 8); // already above target
        assert_eq!(grown.class_count(1), 5);
    }
}
