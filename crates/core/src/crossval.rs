//! Stratified k-fold cross-validation over *real* designs.
//!
//! Each fold holds out 1/k of the real corpus for evaluation and fits the
//! full pipeline (GAN amplification included) on the rest, so every real
//! design is tested exactly once with no synthetic leakage — the
//! evaluation protocol a deployment decision should be based on (see
//! EXPERIMENTS.md §A4 for how much this differs from the paper's
//! amplify-then-split protocol).

use noodle_metrics::DistributionSummary;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::MultimodalDataset;
use crate::detector::{EvaluationReport, FusionStrategy, NoodleConfig, NoodleDetector};
use crate::error::PipelineError;

/// The evaluation of one cross-validation fold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldReport {
    /// Fold index in `0..k`.
    pub fold: usize,
    /// Indices (into the input dataset) of the held-out designs.
    pub test_indices: Vec<usize>,
    /// The fitted pipeline's evaluation on the held-out designs.
    pub report: EvaluationReport,
}

/// Aggregated cross-validation results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidation {
    /// Per-fold evaluations.
    pub folds: Vec<FoldReport>,
}

impl CrossValidation {
    /// Brier scores of one strategy across folds.
    pub fn briers_of(&self, strategy: FusionStrategy) -> Vec<f64> {
        self.folds.iter().map(|f| f.report.brier_of(strategy)).collect()
    }

    /// Distribution summary of one strategy's fold Brier scores.
    ///
    /// # Panics
    ///
    /// Panics if there are no folds.
    pub fn summary_of(&self, strategy: FusionStrategy) -> DistributionSummary {
        noodle_metrics::summarize(&self.briers_of(strategy), 0.95)
    }

    /// Pooled `(probability, outcome)` pairs of one strategy over all
    /// folds, for pooled metrics (ROC, calibration, …).
    pub fn pooled(&self, strategy: FusionStrategy) -> (Vec<f64>, Vec<bool>) {
        let mut probs = Vec::new();
        let mut outcomes = Vec::new();
        for fold in &self.folds {
            probs.extend_from_slice(fold.report.probs_of(strategy));
            outcomes.extend(fold.report.test_outcomes());
        }
        (probs, outcomes)
    }
}

/// Runs stratified k-fold cross-validation.
///
/// Folds are stratified by class so each contains both Trojan-free and
/// Trojan-infected designs (requires at least `k` designs of each class).
///
/// # Errors
///
/// Returns [`PipelineError`] if the dataset cannot be folded (fewer than
/// `k` designs of either class, or `k < 2`) or any fold fails to fit.
pub fn cross_validate<R: Rng + ?Sized>(
    dataset: &MultimodalDataset,
    config: &NoodleConfig,
    k: usize,
    rng: &mut R,
) -> Result<CrossValidation, PipelineError> {
    if k < 2 {
        return Err(PipelineError::Dataset("k-fold needs k >= 2".into()));
    }
    for class in 0..=1 {
        if dataset.class_count(class) < k {
            return Err(PipelineError::Dataset(format!(
                "class {class} has {} designs, fewer than k = {k}",
                dataset.class_count(class)
            )));
        }
    }
    // Stratified fold assignment: shuffle each class, deal round-robin.
    let mut fold_of = vec![0usize; dataset.len()];
    for class in 0..=1 {
        let mut indices = dataset.class_indices(class);
        rand::seq::SliceRandom::shuffle(indices.as_mut_slice(), rng);
        for (pos, &i) in indices.iter().enumerate() {
            fold_of[i] = pos % k;
        }
    }
    let mut folds = Vec::with_capacity(k);
    for fold in 0..k {
        let test_indices: Vec<usize> = (0..dataset.len()).filter(|&i| fold_of[i] == fold).collect();
        let detector = NoodleDetector::fit_holdout(dataset, &test_indices, config, rng)?;
        folds.push(FoldReport { fold, test_indices, report: detector.evaluation().clone() });
    }
    Ok(CrossValidation { folds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noodle_bench_gen::{generate_corpus, CorpusConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> MultimodalDataset {
        let corpus =
            generate_corpus(&CorpusConfig { trojan_free: 12, trojan_infected: 6, seed: 77 });
        MultimodalDataset::from_benchmarks(&corpus).unwrap()
    }

    #[test]
    fn every_design_tested_exactly_once() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let cv = cross_validate(&ds, &NoodleConfig::fast(), 3, &mut rng).unwrap();
        assert_eq!(cv.folds.len(), 3);
        let mut seen: Vec<usize> = cv.folds.iter().flat_map(|f| f.test_indices.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..ds.len()).collect::<Vec<_>>());
        // Stratification: every fold sees both classes.
        for fold in &cv.folds {
            assert!(fold.report.test_labels.contains(&0), "fold {} misses TF", fold.fold);
            assert!(fold.report.test_labels.contains(&1), "fold {} misses TI", fold.fold);
        }
    }

    #[test]
    fn summaries_and_pooling_are_consistent() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let cv = cross_validate(&ds, &NoodleConfig::fast(), 3, &mut rng).unwrap();
        let summary = cv.summary_of(FusionStrategy::LateFusion);
        assert_eq!(summary.n, 3);
        assert!(summary.mean >= 0.0 && summary.mean <= 1.0);
        let (probs, outcomes) = cv.pooled(FusionStrategy::LateFusion);
        assert_eq!(probs.len(), ds.len());
        assert_eq!(outcomes.len(), ds.len());
    }

    #[test]
    fn rejects_bad_k() {
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(cross_validate(&ds, &NoodleConfig::fast(), 1, &mut rng).is_err());
        assert!(cross_validate(&ds, &NoodleConfig::fast(), 7, &mut rng).is_err());
    }
}
