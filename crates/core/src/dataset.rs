//! The multimodal dataset: per-design graph-image and tabular feature
//! vectors with labels, plus stratified splitting.

use noodle_bench_gen::Benchmark;
use noodle_graph::{build_graph, graph_image, IMAGE_CHANNELS, IMAGE_SIZE};
use noodle_nn::Tensor;
use noodle_tabular::{extract_features, TabularFeatures};
use noodle_verilog::parse;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::PipelineError;

/// One design in both modalities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultimodalSample {
    /// Design name.
    pub name: String,
    /// Class index: 0 = Trojan-free, 1 = Trojan-infected.
    pub label: usize,
    /// Flattened graph image (`IMAGE_CHANNELS × IMAGE_SIZE × IMAGE_SIZE`).
    pub graph: Vec<f32>,
    /// Tabular code-branching feature vector.
    pub tabular: Vec<f32>,
    /// Whether the sample was synthesized by the GAN amplifier.
    pub synthetic: bool,
}

/// A dataset of multimodal samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MultimodalDataset {
    samples: Vec<MultimodalSample>,
}

/// Stratified index split into train / calibration / test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Split {
    /// Training indices.
    pub train: Vec<usize>,
    /// Conformal calibration indices.
    pub calibration: Vec<usize>,
    /// Held-out test indices.
    pub test: Vec<usize>,
}

/// Length of the flattened graph modality vector.
pub const GRAPH_DIM: usize = IMAGE_CHANNELS * IMAGE_SIZE * IMAGE_SIZE;

/// Length of the tabular modality vector.
pub const TABULAR_DIM: usize = TabularFeatures::len();

impl MultimodalDataset {
    /// Builds the dataset from generated benchmarks by parsing each design
    /// and extracting both modalities.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] if any benchmark fails to parse or has no
    /// modules.
    pub fn from_benchmarks(benchmarks: &[Benchmark]) -> Result<Self, PipelineError> {
        let _span = noodle_telemetry::span!("dataset.build", designs = benchmarks.len());
        let started = std::time::Instant::now();
        // Designs are independent, so both stages fan out one design per
        // chunk; collecting in index order keeps the sample order — and
        // which error is reported — identical at every thread count.
        let parsed: Vec<noodle_verilog::SourceFile> = {
            let _parse = noodle_telemetry::span!("dataset.parse");
            noodle_compute::par_map_collect(benchmarks.len(), 1, |i| parse(&benchmarks[i].source))
                .into_iter()
                .collect::<Result<_, _>>()?
        };
        let _extract = noodle_telemetry::span!("dataset.extract");
        let samples = noodle_compute::par_map_collect(benchmarks.len(), 1, |i| {
            sample_from_file(&benchmarks[i].name, &parsed[i], benchmarks[i].label.index())
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            noodle_telemetry::gauge_set(
                "dataset.designs_per_sec",
                benchmarks.len() as f64 / elapsed,
            );
        }
        Ok(Self { samples })
    }

    /// Builds the dataset from raw `(name, verilog_source, label)` triples.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] if any source fails to parse or has no
    /// modules.
    pub fn from_sources(sources: &[(&str, &str, usize)]) -> Result<Self, PipelineError> {
        let _span = noodle_telemetry::span!("dataset.build", designs = sources.len());
        let samples = noodle_compute::par_map_collect(sources.len(), 1, |i| {
            let (name, source, label) = sources[i];
            sample_from_source(name, source, label)
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { samples })
    }

    /// Wraps pre-extracted samples (used by the GAN amplifier).
    pub fn from_samples(samples: Vec<MultimodalSample>) -> Self {
        Self { samples }
    }

    /// The samples in order.
    pub fn samples(&self) -> &[MultimodalSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: MultimodalSample) {
        self.samples.push(sample);
    }

    /// Number of samples with the given label.
    pub fn class_count(&self, label: usize) -> usize {
        self.samples.iter().filter(|s| s.label == label).count()
    }

    /// Indices of all samples with the given label.
    pub fn class_indices(&self, label: usize) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.samples[i].label == label).collect()
    }

    /// The graph modality of selected samples as `[n, C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn graph_tensor(&self, indices: &[usize]) -> Tensor {
        let mut data = Vec::with_capacity(indices.len() * GRAPH_DIM);
        for &i in indices {
            data.extend_from_slice(&self.samples[i].graph);
        }
        Tensor::from_vec(vec![indices.len(), IMAGE_CHANNELS, IMAGE_SIZE, IMAGE_SIZE], data)
            .expect("graph vectors have a fixed length")
    }

    /// The graph modality flattened to `[n, GRAPH_DIM]` (for GANs and early
    /// fusion).
    pub fn graph_matrix(&self, indices: &[usize]) -> Tensor {
        let mut data = Vec::with_capacity(indices.len() * GRAPH_DIM);
        for &i in indices {
            data.extend_from_slice(&self.samples[i].graph);
        }
        Tensor::from_vec(vec![indices.len(), GRAPH_DIM], data)
            .expect("graph vectors have a fixed length")
    }

    /// The tabular modality of selected samples as `[n, TABULAR_DIM]`.
    pub fn tabular_matrix(&self, indices: &[usize]) -> Tensor {
        let mut data = Vec::with_capacity(indices.len() * TABULAR_DIM);
        for &i in indices {
            data.extend_from_slice(&self.samples[i].tabular);
        }
        Tensor::from_vec(vec![indices.len(), TABULAR_DIM], data)
            .expect("tabular vectors have a fixed length")
    }

    /// Labels of selected samples.
    pub fn labels(&self, indices: &[usize]) -> Vec<usize> {
        indices.iter().map(|&i| self.samples[i].label).collect()
    }

    /// A new dataset containing clones of the selected samples.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> MultimodalDataset {
        MultimodalDataset::from_samples(indices.iter().map(|&i| self.samples[i].clone()).collect())
    }

    /// Stratified split into train / calibration / test by fractions.
    /// Within each class, sample order is shuffled by `seed`; fractions
    /// apply per class so the imbalance is preserved in every part and no
    /// part ends up without minority examples.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < train_frac`, `0 < calib_frac` and
    /// `train_frac + calib_frac < 1`.
    pub fn split(&self, train_frac: f64, calib_frac: f64, seed: u64) -> Split {
        assert!(train_frac > 0.0 && calib_frac > 0.0, "fractions must be positive");
        assert!(train_frac + calib_frac < 1.0, "no test fraction left");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut split = Split { train: Vec::new(), calibration: Vec::new(), test: Vec::new() };
        let max_label = self.samples.iter().map(|s| s.label).max().unwrap_or(0);
        for label in 0..=max_label {
            let mut indices = self.class_indices(label);
            rand::seq::SliceRandom::shuffle(indices.as_mut_slice(), &mut rng);
            let n = indices.len();
            // At least one example of each class in each part when possible.
            let n_train =
                ((n as f64 * train_frac).round() as usize).clamp(1, n.saturating_sub(2).max(1));
            let n_calib = ((n as f64 * calib_frac).round() as usize)
                .clamp(1, (n - n_train).saturating_sub(1).max(1));
            split.train.extend(&indices[..n_train]);
            split.calibration.extend(&indices[n_train..n_train + n_calib]);
            split.test.extend(&indices[n_train + n_calib..]);
        }
        split
    }
}

/// Extracts both modality vectors from Verilog source text: the flattened
/// graph image and the tabular feature vector.
///
/// # Errors
///
/// Returns [`PipelineError`] if the source fails to parse or contains no
/// modules.
///
/// # Examples
///
/// ```
/// use noodle_core::extract_modalities;
///
/// # fn main() -> Result<(), noodle_core::PipelineError> {
/// let (graph, tabular) =
///     extract_modalities("module m(input a, output y); assign y = !a; endmodule")?;
/// assert_eq!(graph.len(), noodle_core::GRAPH_DIM);
/// assert_eq!(tabular.len(), noodle_core::TABULAR_DIM);
/// # Ok(())
/// # }
/// ```
pub fn extract_modalities(source: &str) -> Result<(Vec<f32>, Vec<f32>), PipelineError> {
    let sample = sample_from_source("anonymous", source, 0)?;
    Ok((sample.graph, sample.tabular))
}

/// Parses one design and extracts both modalities. Multi-module sources are
/// merged by summing tabular features and overlaying graph images (the
/// TrustHub benchmarks are single-IP designs, but hierarchical sources
/// should not lose their submodules).
fn sample_from_source(
    name: &str,
    source: &str,
    label: usize,
) -> Result<MultimodalSample, PipelineError> {
    let file = parse(source)?;
    sample_from_file(name, &file, label)
}

/// Extracts both modalities from an already-parsed design (the loop body of
/// [`MultimodalDataset::from_benchmarks`], split out so parsing and
/// extraction can be traced as separate stages).
fn sample_from_file(
    name: &str,
    file: &noodle_verilog::SourceFile,
    label: usize,
) -> Result<MultimodalSample, PipelineError> {
    if file.modules.is_empty() {
        return Err(PipelineError::EmptyDesign);
    }
    // Hierarchical sources: flatten the top module (the one nobody
    // instantiates) so cross-module dataflow is visible to the graph
    // modality. If flattening fails (e.g. a black-box instance), fall back
    // to merging per-module features.
    let flattened = if file.modules.len() > 1 {
        let instantiated: std::collections::HashSet<&str> = file
            .modules
            .iter()
            .flat_map(|m| m.items.iter())
            .filter_map(|item| match item {
                noodle_verilog::Item::Instance { module, .. } => Some(module.as_str()),
                _ => None,
            })
            .collect();
        file.modules
            .iter()
            .find(|m| !instantiated.contains(m.name.as_str()))
            .and_then(|top| noodle_verilog::transform::flatten(file, &top.name).ok())
    } else {
        None
    };
    let modules: Vec<&noodle_verilog::Module> = match &flattened {
        Some(flat) => vec![flat],
        None => file.modules.iter().collect(),
    };
    let mut graph_acc = vec![0.0f32; GRAPH_DIM];
    let mut tabular_acc = vec![0.0f32; TABULAR_DIM];
    for module in modules {
        let image = graph_image(&build_graph(module));
        for (a, &v) in graph_acc.iter_mut().zip(image.data()) {
            *a = a.max(v);
        }
        let features = extract_features(module).to_vec();
        for (a, v) in tabular_acc.iter_mut().zip(features) {
            *a += v;
        }
    }
    Ok(MultimodalSample {
        name: name.to_string(),
        label,
        graph: graph_acc,
        tabular: tabular_acc,
        synthetic: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noodle_bench_gen::{generate_corpus, CorpusConfig};

    fn tiny_dataset() -> MultimodalDataset {
        let corpus =
            generate_corpus(&CorpusConfig { trojan_free: 12, trojan_infected: 6, seed: 5 });
        MultimodalDataset::from_benchmarks(&corpus).unwrap()
    }

    #[test]
    fn builds_from_corpus() {
        let ds = tiny_dataset();
        assert_eq!(ds.len(), 18);
        assert_eq!(ds.class_count(0), 12);
        assert_eq!(ds.class_count(1), 6);
        for s in ds.samples() {
            assert_eq!(s.graph.len(), GRAPH_DIM);
            assert_eq!(s.tabular.len(), TABULAR_DIM);
            assert!(!s.synthetic);
        }
    }

    #[test]
    fn tensors_have_expected_shapes() {
        let ds = tiny_dataset();
        let idx: Vec<usize> = (0..5).collect();
        assert_eq!(ds.graph_tensor(&idx).shape(), &[5, IMAGE_CHANNELS, IMAGE_SIZE, IMAGE_SIZE]);
        assert_eq!(ds.graph_matrix(&idx).shape(), &[5, GRAPH_DIM]);
        assert_eq!(ds.tabular_matrix(&idx).shape(), &[5, TABULAR_DIM]);
        assert_eq!(ds.labels(&idx).len(), 5);
    }

    #[test]
    fn split_is_stratified_and_complete() {
        let ds = tiny_dataset();
        let split = ds.split(0.5, 0.25, 42);
        let mut all: Vec<usize> =
            split.train.iter().chain(&split.calibration).chain(&split.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..18).collect::<Vec<_>>(), "split must partition the dataset");
        // Each part contains both classes.
        for part in [&split.train, &split.calibration, &split.test] {
            let labels = ds.labels(part);
            assert!(labels.contains(&0), "part misses class 0");
            assert!(labels.contains(&1), "part misses class 1");
        }
    }

    #[test]
    fn split_depends_on_seed() {
        let ds = tiny_dataset();
        let a = ds.split(0.5, 0.25, 1);
        let b = ds.split(0.5, 0.25, 2);
        assert_ne!(a.train, b.train);
        assert_eq!(ds.split(0.5, 0.25, 1), a, "same seed must reproduce");
    }

    #[test]
    fn hierarchical_sources_are_flattened() {
        let hierarchical = "
            module top(input a, input b, output y);
                wire n;
                stage s0(.i(a), .o(n));
                stage s1(.i(n & b), .o(y));
            endmodule
            module stage(input i, output o);
                assign o = !i;
            endmodule";
        let flat_equivalent = "
            module top(input a, input b, output y);
                wire n;
                wire s0_i, s0_o, s1_i, s1_o;
                assign s0_o = !s0_i;
                assign s1_o = !s1_i;
                assign s0_i = a;
                assign n = s0_o;
                assign s1_i = n & b;
                assign y = s1_o;
            endmodule";
        let ds = MultimodalDataset::from_sources(&[
            ("hier", hierarchical, 0),
            ("flat", flat_equivalent, 0),
        ])
        .unwrap();
        // The hierarchical sample must see the cross-module dataflow: its
        // graph must be as connected as the hand-flattened equivalent's
        // (same number of non-zero image cells), not two disjoint islands.
        let nz = |v: &[f32]| v.iter().filter(|&&x| x > 0.0).count();
        assert_eq!(nz(&ds.samples()[0].graph), nz(&ds.samples()[1].graph));
    }

    #[test]
    fn parse_failure_is_reported() {
        let result = MultimodalDataset::from_sources(&[("bad", "module broken(", 0)]);
        assert!(matches!(result, Err(PipelineError::Parse(_))));
    }

    #[test]
    fn empty_source_is_rejected() {
        let result = MultimodalDataset::from_sources(&[("empty", "", 0)]);
        assert!(matches!(result, Err(PipelineError::EmptyDesign)));
    }

    #[test]
    fn bare_trojan_insertion_shifts_trigger_features() {
        // On undecorated designs (no benign trigger-lookalikes) the raw
        // Trojan signature must point in the expected direction. The full
        // corpus deliberately cancels this marginal with decoy chains —
        // that cancellation is tested in `noodle-bench-gen`.
        use noodle_bench_gen::{families, insert_trojan, CircuitFamily, TrojanSpec};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let col =
            noodle_tabular::FEATURE_NAMES.iter().position(|&n| n == "const_comparisons").unwrap();
        let mut clean_sum = 0.0;
        let mut infected_sum = 0.0;
        for (i, spec) in TrojanSpec::all().into_iter().enumerate() {
            let family = CircuitFamily::ALL[i % CircuitFamily::ALL.len()];
            let clean = families::generate(family, "c", &mut rng);
            let clean_src = noodle_verilog::print_module(&clean.module);
            let mut infected = clean.clone();
            insert_trojan(&mut infected, spec, &mut rng);
            let infected_src = noodle_verilog::print_module(&infected.module);
            let ds = MultimodalDataset::from_sources(&[
                ("c", clean_src.as_str(), 0),
                ("t", infected_src.as_str(), 1),
            ])
            .unwrap();
            clean_sum += ds.samples()[0].tabular[col];
            infected_sum += ds.samples()[1].tabular[col];
        }
        assert!(
            infected_sum > clean_sum,
            "bare Trojans must add comparator mass: {infected_sum} vs {clean_sum}"
        );
    }
}
