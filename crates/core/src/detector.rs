//! The NOODLE detector: multimodal CNNs + Mondrian ICP + p-value fusion.
//!
//! [`NoodleDetector::fit`] implements Algorithm 2 of the paper end to end:
//! GAN amplification of the small corpus, per-modality CNN training, early
//! and late fusion with uncertainty-aware p-value combination
//! (Algorithm 1), and selection of the winning fusion strategy by Brier
//! score. The fitted detector then classifies new RTL with calibrated
//! uncertainty, including designs with a missing modality (imputed by a
//! conditional GAN).

use std::collections::BTreeMap;
use std::time::Instant;

use noodle_conformal::{nonconformity_from_proba, Combiner, ConformalPrediction, MondrianIcp};
use noodle_gan::{GanConfig, ImputerConfig, ModalityImputer};
use noodle_graph::{IMAGE_CHANNELS, IMAGE_SIZE};
use noodle_metrics::brier_score;
use noodle_nn::{InferArena, QuantizedModel, Tensor, TrainConfig};
use noodle_observe::{
    emit_if, AuditHeader, AuditSink, CalibrationBaseline, PredictionRecord, ScoreBaseline,
    ServeInfo, SourceProbe, AUDIT_SCHEMA_VERSION,
};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::amplify::amplify_dataset;
use crate::classifier::{ModalityClassifier, ModalityKind};
use crate::dataset::{extract_modalities, MultimodalDataset, Split, GRAPH_DIM, TABULAR_DIM};
use crate::error::PipelineError;
use crate::feature_cache::FeatureCache;
use crate::normalize::ZScore;

/// All hyperparameters of the NOODLE pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoodleConfig {
    /// CNN training hyperparameters (identical for every modality).
    pub train: TrainConfig,
    /// GAN amplification hyperparameters.
    pub gan: GanConfig,
    /// Cross-modal imputer hyperparameters.
    pub imputer: ImputerConfig,
    /// Target samples per class after GAN amplification (the paper grows
    /// the corpus to ~500 points total; 250 per class).
    pub amplify_per_class: usize,
    /// P-value combination method for late fusion.
    pub combiner: Combiner,
    /// Fraction of the amplified corpus used for CNN training.
    pub train_frac: f64,
    /// Fraction used for conformal calibration.
    pub calib_frac: f64,
    /// Significance level ε for prediction regions.
    pub significance: f64,
    /// Whether to train the cross-modal imputers (needed only for
    /// missing-modality detection).
    pub train_imputers: bool,
    /// Evaluation protocol: `false` (paper-faithful) amplifies the whole
    /// corpus before splitting, so the test split contains GAN-synthetic
    /// samples; `true` holds out *real* designs for testing and amplifies
    /// only the training/calibration pool (no synthetic leakage into the
    /// evaluation).
    pub holdout_real_test: bool,
}

impl Default for NoodleConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig { epochs: 10, batch_size: 16, lr: 1e-3 },
            gan: GanConfig::default(),
            imputer: ImputerConfig::default(),
            amplify_per_class: 250,
            combiner: Combiner::Fisher,
            train_frac: 0.56,
            calib_frac: 0.22,
            significance: 0.1,
            train_imputers: true,
            holdout_real_test: false,
        }
    }
}

impl NoodleConfig {
    /// A heavily down-scaled configuration for unit tests and examples that
    /// must run in seconds.
    pub fn fast() -> Self {
        Self {
            train: TrainConfig { epochs: 14, batch_size: 16, lr: 2e-3 },
            gan: GanConfig { epochs: 20, hidden_dim: 16, ..GanConfig::default() },
            imputer: ImputerConfig { epochs: 15, hidden_dim: 16, ..ImputerConfig::default() },
            amplify_per_class: 50,
            train_imputers: false,
            ..Self::default()
        }
    }
}

/// The four classification strategies the paper compares (Table I rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FusionStrategy {
    /// Graph modality CNN alone.
    GraphOnly,
    /// Tabular modality CNN alone.
    TabularOnly,
    /// Feature-level fusion: one CNN over the concatenated modalities.
    EarlyFusion,
    /// Decision-level fusion: conformal p-value combination per class.
    LateFusion,
}

impl FusionStrategy {
    /// All strategies in Table I order.
    pub const ALL: [FusionStrategy; 4] = [
        FusionStrategy::GraphOnly,
        FusionStrategy::TabularOnly,
        FusionStrategy::EarlyFusion,
        FusionStrategy::LateFusion,
    ];

    /// Human-readable name matching the paper's Table I.
    pub fn label(self) -> &'static str {
        match self {
            FusionStrategy::GraphOnly => "Graph-based Data",
            FusionStrategy::TabularOnly => "Tabular-based Data",
            FusionStrategy::EarlyFusion => "NOODLE - Early Fusion (Graph + Tabular)",
            FusionStrategy::LateFusion => "NOODLE - Late Fusion (Graph + Tabular)",
        }
    }
}

/// Per-strategy positive-class probabilities and Brier scores on the held-
/// out test split, captured during [`NoodleDetector::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// Names of the test designs.
    pub test_names: Vec<String>,
    /// Ground-truth labels of the test designs (0 = TF, 1 = TI).
    pub test_labels: Vec<usize>,
    /// P(Trojan-infected) per test design, graph modality alone.
    pub graph_probs: Vec<f64>,
    /// P(Trojan-infected) per test design, tabular modality alone.
    pub tabular_probs: Vec<f64>,
    /// P(Trojan-infected) per test design, early fusion.
    pub early_probs: Vec<f64>,
    /// P(Trojan-infected) per test design, late fusion (normalized
    /// combined p-values).
    pub late_probs: Vec<f64>,
    /// Combined per-class p-values per test design (late fusion).
    pub late_p_values: Vec<[f64; 2]>,
    /// Per-class conformal p-values per test design, graph modality.
    pub graph_p_values: Vec<[f64; 2]>,
    /// Per-class conformal p-values per test design, tabular modality.
    pub tabular_p_values: Vec<[f64; 2]>,
    /// Brier score per strategy, in [`FusionStrategy::ALL`] order.
    pub brier: [f64; 4],
    /// The winning fusion strategy (lowest Brier among early/late).
    pub winner: FusionStrategy,
}

impl EvaluationReport {
    /// The Brier score of one strategy.
    pub fn brier_of(&self, strategy: FusionStrategy) -> f64 {
        let idx = FusionStrategy::ALL
            .iter()
            .position(|&s| s == strategy)
            .expect("strategy is one of ALL");
        self.brier[idx]
    }

    /// The probability series of one strategy.
    pub fn probs_of(&self, strategy: FusionStrategy) -> &[f64] {
        match strategy {
            FusionStrategy::GraphOnly => &self.graph_probs,
            FusionStrategy::TabularOnly => &self.tabular_probs,
            FusionStrategy::EarlyFusion => &self.early_probs,
            FusionStrategy::LateFusion => &self.late_probs,
        }
    }

    /// Test labels as booleans (`true` = Trojan-infected).
    pub fn test_outcomes(&self) -> Vec<bool> {
        self.test_labels.iter().map(|&l| l == 1).collect()
    }
}

/// One classification decision with calibrated uncertainty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The hedged point decision: is the design Trojan-infected?
    pub infected: bool,
    /// Normalized probability of infection derived from the p-values.
    pub probability_infected: f64,
    /// The conformal prediction (per-class p-values).
    pub prediction: ConformalPrediction,
    /// Classes in the region at the configured significance.
    pub region: Vec<usize>,
    /// Credibility of the decision (largest p-value).
    pub credibility: f64,
    /// Confidence of the decision (1 − second-largest p-value).
    pub confidence: f64,
    /// Whether the region is uncertain (contains both classes) — the
    /// risk-aware "send to manual inspection" signal.
    pub uncertain: bool,
    /// Whether any modality was imputed rather than extracted.
    pub imputed_modality: bool,
    /// The strategy that produced the decision.
    pub strategy: FusionStrategy,
}

/// One named screening request for [`NoodleDetector::detect_batch`].
#[derive(Debug, Clone, Copy)]
pub struct DetectRequest<'a> {
    /// Design identifier carried into audit records and verdict output.
    pub design: &'a str,
    /// Verilog source text to screen.
    pub source: &'a str,
    /// Optional ground-truth label (0 = TF, 1 = TI) for offline monitors.
    pub label: Option<usize>,
    /// Pre-minted trace context for this request. A serving layer that
    /// mints a context at admission passes it here so the audit record,
    /// telemetry exemplars and flight-recorder events all carry the
    /// admission-time id; `None` (the CLI/batch default) derives a
    /// deterministic per-index context from the call's base context, which
    /// preserves the bit-identical batching contract.
    pub trace: Option<noodle_trace::TraceContext>,
}

/// Latency attribution carried into one audit record: the per-file share
/// plus the size and wall time of the enclosing micro-batch (trivially one
/// file and the same latency on the sequential path).
#[derive(Debug, Clone, Copy)]
struct AuditTiming {
    latency_us: f64,
    batch_latency_us: f64,
    batch_size: usize,
}

impl AuditTiming {
    /// Timing for a sequential (batch-of-one) detect call.
    fn single(start: Option<Instant>) -> Self {
        let us = start.map_or(0.0, |s| s.elapsed().as_secs_f64() * 1e6);
        Self { latency_us: us, batch_latency_us: us, batch_size: 1 }
    }
}

/// A fitted NOODLE detector.
///
/// The int8 post-training-quantized serving twins of the three CNNs,
/// built at fit time from the ICP calibration split and persisted in the
/// model JSON alongside the float networks.
///
/// The detector serves from the float networks by default;
/// [`NoodleDetector::set_quantized`] switches the CNN forwards to these
/// twins (everything else — normalization, conformal p-values, fusion —
/// is unchanged). The calibration-set Brier scores of both paths are
/// captured here so deployments can gate quantization on measured
/// calibration quality instead of hoping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedNets {
    graph: QuantizedModel,
    tabular: QuantizedModel,
    early: QuantizedModel,
    /// Calibration-set Brier scores of the float CNNs, in
    /// `[graph, tabular, early_fusion]` order.
    calib_brier_f32: [f64; 3],
    /// The same statistic served through the int8 path.
    calib_brier_int8: [f64; 3],
}

impl QuantizedNets {
    /// The quantized twin serving the given modality.
    fn for_kind(&self, kind: ModalityKind) -> &QuantizedModel {
        match kind {
            ModalityKind::Graph => &self.graph,
            ModalityKind::Tabular => &self.tabular,
            ModalityKind::EarlyFusion => &self.early,
        }
    }

    /// Calibration-set Brier scores of the float CNNs, in
    /// `[graph, tabular, early_fusion]` order.
    pub fn calib_brier_f32(&self) -> [f64; 3] {
        self.calib_brier_f32
    }

    /// Calibration-set Brier scores of the int8 twins, in the same order.
    pub fn calib_brier_int8(&self) -> [f64; 3] {
        self.calib_brier_int8
    }
}

/// The whole detector — CNNs, normalizer, conformal calibration, imputers
/// and the captured evaluation — serializes with [`NoodleDetector::to_json`]
/// so a model can be trained once and deployed.
#[derive(Debug, Serialize, Deserialize)]
pub struct NoodleDetector {
    config: NoodleConfig,
    graph_clf: ModalityClassifier,
    tabular_clf: ModalityClassifier,
    early_clf: ModalityClassifier,
    tabular_norm: ZScore,
    icp_graph: MondrianIcp,
    icp_tabular: MondrianIcp,
    icp_early: MondrianIcp,
    imputer_graph_to_tab: Option<ModalityImputer>,
    imputer_tab_to_graph: Option<ModalityImputer>,
    evaluation: EvaluationReport,
    /// Calibration-time reference distributions for drift monitoring,
    /// persisted with the model (absent in detectors fitted before the
    /// observability layer existed).
    #[serde(default)]
    baseline: Option<CalibrationBaseline>,
    /// Int8 serving twins of the three CNNs (absent in detectors fitted
    /// before the quantized path existed).
    #[serde(default)]
    quantized: Option<QuantizedNets>,
    /// Whether detect calls serve from the quantized twins; a runtime
    /// switch, never serialized.
    #[serde(skip)]
    use_quantized: bool,
    /// Attached audit sink; runtime-only, never serialized.
    #[serde(skip)]
    audit: Option<Box<dyn AuditSink>>,
    /// Monotonic sequence number for emitted audit records.
    #[serde(skip)]
    audit_seq: u64,
    /// Serving-daemon provenance stamped into audit headers when this
    /// detector serves behind `noodle serve`; runtime-only, never
    /// serialized.
    #[serde(skip)]
    serve: Option<ServeInfo>,
}

impl NoodleDetector {
    /// Fits the full pipeline on a multimodal dataset (Algorithm 2).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] if the dataset is too small to split into
    /// train/calibration/test parts with both classes present, or if
    /// conformal calibration fails.
    pub fn fit<R: Rng + ?Sized>(
        dataset: &MultimodalDataset,
        config: &NoodleConfig,
        rng: &mut R,
    ) -> Result<Self, PipelineError> {
        if dataset.class_count(0) < 2 || dataset.class_count(1) < 2 {
            return Err(PipelineError::Dataset("need at least two samples of each class".into()));
        }
        let _span = noodle_telemetry::span!("pipeline.fit", designs = dataset.len());

        // Steps 1–2: GAN amplification (class-conditional, joint
        // modalities) and stratified splitting. The paper amplifies the
        // whole corpus before splitting, so the test split contains
        // synthetic samples; with `holdout_real_test` the test split is
        // carved from the *real* designs first and only the remaining pool
        // is amplified — the leakage-free protocol.
        let split_seed = rng.random::<u64>();
        let (amplified, split) = if config.holdout_real_test {
            let test_frac = 1.0 - config.train_frac - config.calib_frac;
            let real = dataset.split(1.0 - test_frac - 1e-9, test_frac / 2.0, split_seed);
            // `real.train` is the amplification pool; `real.calibration` and
            // `real.test` together form the held-out real test set.
            let test_indices: Vec<usize> =
                real.calibration.iter().chain(&real.test).copied().collect();
            prepare_holdout(dataset, &test_indices, config, split_seed, rng)
        } else {
            let amplified = amplify_dataset(dataset, config.amplify_per_class, &config.gan, rng);
            let split = amplified.split(config.train_frac, config.calib_frac, split_seed);
            (amplified, split)
        };
        Self::fit_prepared(amplified, split, config, rng)
    }

    /// Fits the pipeline with an explicit held-out real test set: the pool
    /// (every design outside `test_indices`) is GAN-amplified for training
    /// and calibration, and the held-out designs form the evaluation split.
    /// This is the building block of [`crate::cross_validate`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] under the same conditions as
    /// [`NoodleDetector::fit`], or if `test_indices` is empty or covers the
    /// whole dataset.
    pub fn fit_holdout<R: Rng + ?Sized>(
        dataset: &MultimodalDataset,
        test_indices: &[usize],
        config: &NoodleConfig,
        rng: &mut R,
    ) -> Result<Self, PipelineError> {
        if test_indices.is_empty() || test_indices.len() >= dataset.len() {
            return Err(PipelineError::Dataset(
                "holdout must leave both a pool and a test set".into(),
            ));
        }
        let _span = noodle_telemetry::span!(
            "pipeline.fit",
            designs = dataset.len(),
            holdout = test_indices.len(),
        );
        let split_seed = rng.random::<u64>();
        let (amplified, split) = prepare_holdout(dataset, test_indices, config, split_seed, rng);
        Self::fit_prepared(amplified, split, config, rng)
    }

    fn fit_prepared<R: Rng + ?Sized>(
        amplified: MultimodalDataset,
        split: Split,
        config: &NoodleConfig,
        rng: &mut R,
    ) -> Result<Self, PipelineError> {
        // Step 3: modality tensors.
        let tensors_span = noodle_telemetry::span!("dataset.tensors");
        let tabular_norm = ZScore::fit(&amplified.tabular_matrix(&split.train));
        let graph_train = amplified.graph_tensor(&split.train);
        let tab_train = tab_input(&amplified, &split.train, &tabular_norm);
        let early_train = early_input(&amplified, &split.train, &tabular_norm);
        let train_labels = amplified.labels(&split.train);
        drop(tensors_span);

        // Step 4: three CNNs with identical hyperparameters.
        let mut graph_clf = ModalityClassifier::new(ModalityKind::Graph, rng);
        let mut tabular_clf = ModalityClassifier::new(ModalityKind::Tabular, rng);
        let mut early_clf = ModalityClassifier::new(ModalityKind::EarlyFusion, rng);
        graph_clf.fit(&graph_train, &train_labels, &config.train, rng);
        tabular_clf.fit(&tab_train, &train_labels, &config.train, rng);
        early_clf.fit(&early_train, &train_labels, &config.train, rng);

        // Step 5: Mondrian ICP calibration per source (Algorithm 1).
        let calib_labels = amplified.labels(&split.calibration);
        let calib_graph = amplified.graph_tensor(&split.calibration);
        let calib_tab = tab_input(&amplified, &split.calibration, &tabular_norm);
        let calib_early = early_input(&amplified, &split.calibration, &tabular_norm);
        let (icp_graph, graph_min_scores) = calibrate(&mut graph_clf, &calib_graph, &calib_labels)?;
        let (icp_tabular, tabular_min_scores) =
            calibrate(&mut tabular_clf, &calib_tab, &calib_labels)?;
        let (icp_early, early_min_scores) = calibrate(&mut early_clf, &calib_early, &calib_labels)?;

        // Step 5b: int8 serving twins, calibrated on the same split the
        // ICP sees, with the calibration-set Brier score of both paths
        // captured so the quantization quality is measurable at serve
        // time (and gated in CI).
        let quantized = {
            let _span = noodle_telemetry::span!("quantize.calibrate", samples = calib_labels.len());
            let calib_outcomes: Vec<bool> = calib_labels.iter().map(|&l| l == 1).collect();
            let mut arena = InferArena::new();
            let (q_graph, graph_briers) =
                quantize_source(&mut graph_clf, &calib_graph, &calib_outcomes, &mut arena);
            let (q_tabular, tabular_briers) =
                quantize_source(&mut tabular_clf, &calib_tab, &calib_outcomes, &mut arena);
            let (q_early, early_briers) =
                quantize_source(&mut early_clf, &calib_early, &calib_outcomes, &mut arena);
            Some(QuantizedNets {
                graph: q_graph,
                tabular: q_tabular,
                early: q_early,
                calib_brier_f32: [graph_briers.0, tabular_briers.0, early_briers.0],
                calib_brier_int8: [graph_briers.1, tabular_briers.1, early_briers.1],
            })
        };

        // Step 6: evaluate every strategy on the test split.
        let fusion_span =
            noodle_telemetry::span!("fusion.evaluate", test_samples = split.test.len());
        let test_labels = amplified.labels(&split.test);
        let graph_proba = graph_clf.predict_proba(&amplified.graph_tensor(&split.test));
        let tab_proba =
            tabular_clf.predict_proba(&tab_input(&amplified, &split.test, &tabular_norm));
        let early_proba =
            early_clf.predict_proba(&early_input(&amplified, &split.test, &tabular_norm));

        let n_test = split.test.len();
        let mut late_probs = Vec::with_capacity(n_test);
        let mut late_p_values = Vec::with_capacity(n_test);
        let mut graph_p_values = Vec::with_capacity(n_test);
        let mut tabular_p_values = Vec::with_capacity(n_test);
        for i in 0..n_test {
            let pg = icp_graph.p_values(&scores_from_proba(graph_proba.row(i)));
            let pt = icp_tabular.p_values(&scores_from_proba(tab_proba.row(i)));
            let fused: Vec<f64> =
                (0..2).map(|c| config.combiner.combine(&[pg[c], pt[c]])).collect();
            late_probs.push(fused[1] / (fused[0] + fused[1]));
            late_p_values.push([fused[0], fused[1]]);
            graph_p_values.push([pg[0], pg[1]]);
            tabular_p_values.push([pt[0], pt[1]]);
        }

        let outcomes: Vec<bool> = test_labels.iter().map(|&l| l == 1).collect();
        let graph_probs: Vec<f64> = (0..n_test).map(|i| graph_proba.row(i)[1] as f64).collect();
        let tabular_probs: Vec<f64> = (0..n_test).map(|i| tab_proba.row(i)[1] as f64).collect();
        let early_probs: Vec<f64> = (0..n_test).map(|i| early_proba.row(i)[1] as f64).collect();
        let brier = [
            brier_score(&graph_probs, &outcomes),
            brier_score(&tabular_probs, &outcomes),
            brier_score(&early_probs, &outcomes),
            brier_score(&late_probs, &outcomes),
        ];
        // Algorithm 2 step 8: choose the winning *fusion* method by Brier.
        let winner = if brier[3] <= brier[2] {
            FusionStrategy::LateFusion
        } else {
            FusionStrategy::EarlyFusion
        };
        let evaluation = EvaluationReport {
            test_names: split.test.iter().map(|&i| amplified.samples()[i].name.clone()).collect(),
            test_labels,
            graph_probs,
            tabular_probs,
            early_probs,
            late_probs,
            late_p_values,
            graph_p_values,
            tabular_p_values,
            brier,
            winner,
        };
        if noodle_telemetry::enabled() {
            for (strategy, value) in FusionStrategy::ALL.iter().zip(&evaluation.brier) {
                noodle_telemetry::gauge_set(&format!("brier.{strategy:?}"), *value);
            }
        }
        drop(fusion_span);

        // Step 7: optional cross-modal imputers for missing modalities.
        let (imputer_graph_to_tab, imputer_tab_to_graph) = if config.train_imputers {
            let _imputer_span = noodle_telemetry::span!("imputer.train");
            let g = amplified.graph_matrix(&split.train);
            let t = amplified.tabular_matrix(&split.train);
            (
                Some(ModalityImputer::train(&g, &t, &config.imputer, rng)),
                Some(ModalityImputer::train(&t, &g, &config.imputer, rng)),
            )
        } else {
            (None, None)
        };

        // Persist the fit-time reference the serve-time monitors compare
        // against: per-source score distributions, class balance, the
        // winner's Brier score.
        let mut baseline_sources = BTreeMap::new();
        for (name, scores) in [
            ("graph", &graph_min_scores),
            ("tabular", &tabular_min_scores),
            ("early_fusion", &early_min_scores),
        ] {
            if let Some(b) = ScoreBaseline::from_scores(scores, 10) {
                baseline_sources.insert(name.to_string(), b);
            }
        }
        let infected = calib_labels.iter().filter(|&&l| l == 1).count();
        let baseline = Some(CalibrationBaseline {
            sources: baseline_sources,
            class_balance: infected as f64 / calib_labels.len().max(1) as f64,
            winner_brier: evaluation.brier_of(winner),
            significance: config.significance,
            calibration_count: calib_labels.len(),
        });

        Ok(Self {
            config: *config,
            graph_clf,
            tabular_clf,
            early_clf,
            tabular_norm,
            icp_graph,
            icp_tabular,
            icp_early,
            imputer_graph_to_tab,
            imputer_tab_to_graph,
            evaluation,
            baseline,
            quantized,
            use_quantized: false,
            audit: None,
            audit_seq: 0,
            serve: None,
        })
    }

    /// The test-split evaluation captured during fitting.
    pub fn evaluation(&self) -> &EvaluationReport {
        &self.evaluation
    }

    /// The winning fusion strategy.
    pub fn winner(&self) -> FusionStrategy {
        self.evaluation.winner
    }

    /// The configuration the detector was fitted with.
    pub fn config(&self) -> &NoodleConfig {
        &self.config
    }

    /// The calibration baseline persisted at fit time, if any (detectors
    /// serialized before the observability layer carry none).
    pub fn baseline(&self) -> Option<&CalibrationBaseline> {
        self.baseline.as_ref()
    }

    /// The int8 serving twins persisted at fit time, if any (detectors
    /// serialized before the quantized path existed carry none).
    pub fn quantized_nets(&self) -> Option<&QuantizedNets> {
        self.quantized.as_ref()
    }

    /// Switches CNN serving between the float networks (`false`, the
    /// default) and the int8 post-training-quantized twins (`true`).
    /// Everything downstream of the softmax — conformal p-values, fusion,
    /// regions, audit — is identical code in both modes.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Dataset`] when enabling quantization on a
    /// model that carries no quantized section (fitted before the int8
    /// path existed); refit to generate one.
    pub fn set_quantized(&mut self, on: bool) -> Result<(), PipelineError> {
        if on && self.quantized.is_none() {
            return Err(PipelineError::Dataset(
                "this model carries no quantized section; refit to generate one".into(),
            ));
        }
        self.use_quantized = on;
        Ok(())
    }

    /// Whether detect calls currently serve from the int8 twins.
    pub fn is_quantized(&self) -> bool {
        self.use_quantized
    }

    /// The quantized nets, but only when quantized serving is switched on.
    fn active_quantized(&self) -> Option<&QuantizedNets> {
        if self.use_quantized {
            self.quantized.as_ref()
        } else {
            None
        }
    }

    /// The audit-log header describing this detector (schema version,
    /// significance, winning strategy, calibration baseline).
    pub fn audit_header(&self) -> AuditHeader {
        AuditHeader {
            schema_version: AUDIT_SCHEMA_VERSION,
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            significance: self.config.significance,
            strategy: format!("{:?}", self.evaluation.winner),
            simd: noodle_compute::active_isa().name().to_string(),
            quantized: self.use_quantized,
            baseline: self.baseline.clone(),
            serve: self.serve.clone(),
        }
    }

    /// Stamps serving-daemon provenance (bind address, batch deadline,
    /// queue capacity) into every audit header this detector emits. Call
    /// before [`NoodleDetector::set_audit_sink`] so the header that opens
    /// the log already carries it.
    pub fn set_serve_info(&mut self, serve: Option<ServeInfo>) {
        self.serve = serve;
    }

    /// Attaches an audit sink: the header is sent immediately and every
    /// subsequent `detect` call emits a [`PredictionRecord`]. With no sink
    /// attached the detect path pays nothing for the audit feature.
    pub fn set_audit_sink(&mut self, mut sink: Box<dyn AuditSink>) {
        sink.header(&self.audit_header());
        self.audit = Some(sink);
    }

    /// Detaches and returns the audit sink, if one was attached.
    pub fn take_audit_sink(&mut self) -> Option<Box<dyn AuditSink>> {
        self.audit.take()
    }

    /// Serializes the fitted detector (networks, calibration, imputers,
    /// evaluation) to JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores a detector previously produced by
    /// [`NoodleDetector::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if `json` is not a valid detector.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Classifies an RTL design given as Verilog source text, using the
    /// winning fusion strategy.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] if the source fails to parse.
    pub fn detect(&mut self, source: &str) -> Result<Detection, PipelineError> {
        self.detect_named("", source, None)
    }

    /// Classifies like [`NoodleDetector::detect`], carrying a design
    /// identifier and an optional ground-truth label (0 = TF, 1 = TI) into
    /// the audit record — the label powers the offline coverage and Brier
    /// monitors.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] if the source fails to parse.
    pub fn detect_named(
        &mut self,
        design: &str,
        source: &str,
        label: Option<usize>,
    ) -> Result<Detection, PipelineError> {
        // One trace context per request: inherit the caller's when one is
        // ambient (so an outer service can stitch its own trace through),
        // mint otherwise. The guard drops last, so the span and latency
        // histogram below both record under this context.
        let request = noodle_trace::current().unwrap_or_else(noodle_trace::TraceContext::mint);
        let _trace = noodle_trace::set_current(request);
        let _span = noodle_telemetry::span!("detect");
        let _timer = noodle_telemetry::time_histogram("detect.latency_us");
        noodle_telemetry::counter_add("detect.calls", 1);
        let (graph, tabular) = extract_modalities(source)?;
        self.detect_features_named(design, Some(&graph), Some(&tabular), label)
    }

    /// Classifies from raw modality vectors; either modality may be missing
    /// and is then imputed by the conditional GAN (Algorithm 2, step 3).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Dataset`] if both modalities are missing, a
    /// vector has the wrong length, or imputation is required but the
    /// detector was fitted with `train_imputers = false`.
    pub fn detect_features(
        &mut self,
        graph: Option<&[f32]>,
        tabular: Option<&[f32]>,
    ) -> Result<Detection, PipelineError> {
        self.detect_features_named("", graph, tabular, None)
    }

    /// [`NoodleDetector::detect_features`] with audit provenance: the
    /// design identifier and optional label are carried into the emitted
    /// [`PredictionRecord`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`NoodleDetector::detect_features`].
    pub fn detect_features_named(
        &mut self,
        design: &str,
        graph: Option<&[f32]>,
        tabular: Option<&[f32]>,
        label: Option<usize>,
    ) -> Result<Detection, PipelineError> {
        let request = noodle_trace::current().unwrap_or_else(noodle_trace::TraceContext::mint);
        let _trace = noodle_trace::set_current(request);
        let start = self.audit.is_some().then(Instant::now);
        let graph_present = graph.is_some();
        let tabular_present = tabular.is_some();
        if let Some(g) = graph {
            if g.len() != GRAPH_DIM {
                return Err(PipelineError::Dataset(format!(
                    "graph vector must have length {GRAPH_DIM}, got {}",
                    g.len()
                )));
            }
        }
        if let Some(t) = tabular {
            if t.len() != TABULAR_DIM {
                return Err(PipelineError::Dataset(format!(
                    "tabular vector must have length {TABULAR_DIM}, got {}",
                    t.len()
                )));
            }
        }
        let mut imputed = false;
        let (graph, tabular): (Vec<f32>, Vec<f32>) = match (graph, tabular) {
            (Some(g), Some(t)) => (g.to_vec(), t.to_vec()),
            (Some(g), None) => {
                let imputer = self
                    .imputer_graph_to_tab
                    .as_mut()
                    .ok_or_else(|| PipelineError::Dataset("imputers were not trained".into()))?;
                imputed = true;
                let gm =
                    Tensor::from_vec(vec![1, GRAPH_DIM], g.to_vec()).expect("length checked above");
                (g.to_vec(), imputer.impute(&gm).row(0).to_vec())
            }
            (None, Some(t)) => {
                let imputer = self
                    .imputer_tab_to_graph
                    .as_mut()
                    .ok_or_else(|| PipelineError::Dataset("imputers were not trained".into()))?;
                imputed = true;
                let tm = Tensor::from_vec(vec![1, TABULAR_DIM], t.to_vec())
                    .expect("length checked above");
                (imputer.impute(&tm).row(0).to_vec(), t.to_vec())
            }
            (None, None) => {
                return Err(PipelineError::Dataset("at least one modality must be present".into()))
            }
        };

        let strategy = self.evaluation.winner;
        let (prediction, probes) = self.predict_with_optional_probes(&graph, &tabular, strategy);
        let detection = self.decision(prediction, strategy, imputed);
        self.emit_audit(
            design,
            label,
            &detection,
            graph_present,
            tabular_present,
            probes,
            AuditTiming::single(start),
        );
        noodle_trace::flight_record(
            noodle_trace::FlightKind::Request,
            request.trace_id,
            request.span_id,
            0,
            u64::from(detection.infected),
            design,
        );
        Ok(detection)
    }

    /// Classifies with an explicitly chosen strategy (used by the ablation
    /// benches).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] if the source fails to parse.
    pub fn detect_with_strategy(
        &mut self,
        source: &str,
        strategy: FusionStrategy,
    ) -> Result<Detection, PipelineError> {
        let start = self.audit.is_some().then(Instant::now);
        let (graph, tabular) = extract_modalities(source)?;
        let (prediction, probes) = self.predict_with_optional_probes(&graph, &tabular, strategy);
        let detection = self.decision(prediction, strategy, false);
        self.emit_audit("", None, &detection, true, true, probes, AuditTiming::single(start));
        Ok(detection)
    }

    /// Screens many designs through the high-throughput serving engine:
    /// modality extraction fans out over the compute pool (consulting the
    /// optional [`FeatureCache`] first), then CNN forwards run as
    /// micro-batches of up to `batch_size` rows through a reusable,
    /// allocation-free inference arena.
    ///
    /// Every kernel on the fast path is row-independent, so verdicts,
    /// p-values and audit records are bit-identical to calling
    /// [`NoodleDetector::detect_named`] once per design, in request order,
    /// at every batch size and thread count. Audit records additionally
    /// carry the micro-batch size and wall time; the per-file latency is
    /// the batch's share, measured (like the sequential path) from after
    /// feature extraction.
    ///
    /// # Errors
    ///
    /// Returns the first [`PipelineError`] in request order if any source
    /// fails to parse; no audit records are emitted in that case.
    pub fn detect_batch(
        &mut self,
        requests: &[DetectRequest<'_>],
        batch_size: usize,
        mut cache: Option<&mut FeatureCache>,
    ) -> Result<Vec<Detection>, PipelineError> {
        let n = requests.len();
        let batch_size = batch_size.max(1);
        // One base context for the whole call; design `i` gets the pure
        // derivation `base.derived(i)` unless the request carries its own
        // admission-minted context, so extraction (stage 1, on pool
        // threads) and inference/audit (stage 2, on this thread) stamp the
        // same per-design id at every thread count and batch size.
        let base = noodle_trace::current().unwrap_or_else(noodle_trace::TraceContext::mint);
        let request_ctx = |i: usize| requests[i].trace.unwrap_or_else(|| base.derived(i as u64));
        let _trace = noodle_trace::set_current(base);
        let _span = noodle_telemetry::span!("detect.batch", files = n, batch = batch_size);
        let started = Instant::now();

        // Stage 1: features. Cache lookups run first (sequential, they
        // mutate LRU state); the misses fan out over the compute pool in
        // request order, so the first error reported is the lowest index —
        // exactly what a sequential loop would surface.
        let mut features: Vec<Option<(Vec<f32>, Vec<f32>)>> = requests
            .iter()
            .map(|r| cache.as_deref_mut().and_then(|c| c.lookup(r.source)))
            .collect();
        let miss_idx: Vec<usize> = (0..n).filter(|&i| features[i].is_none()).collect();
        let extracted = noodle_compute::par_map_collect(miss_idx.len(), 1, |j| {
            let i = miss_idx[j];
            let _trace = noodle_trace::set_current(request_ctx(i));
            extract_modalities(requests[i].source)
        });
        for (&i, result) in miss_idx.iter().zip(extracted) {
            let (graph, tabular) = result?;
            if let Some(c) = cache.as_deref_mut() {
                c.insert(requests[i].source, graph.clone(), tabular.clone());
            }
            features[i] = Some((graph, tabular));
        }

        // Stage 2: micro-batched CNN forwards + conformal p-values. The
        // arena is local to the call — it reaches steady-state capacity on
        // the first chunk and every later chunk reuses it verbatim.
        let strategy = self.evaluation.winner;
        let mut arena = InferArena::new();
        let mut detections = Vec::with_capacity(n);
        let mut chunk_start = 0;
        while chunk_start < n {
            let m = batch_size.min(n - chunk_start);
            let mut graph_data = Vec::with_capacity(m * GRAPH_DIM);
            let mut tab_data = Vec::with_capacity(m * TABULAR_DIM);
            for i in chunk_start..chunk_start + m {
                let (g, t) = features[i].as_ref().expect("all features filled above");
                graph_data.extend_from_slice(g);
                tab_data.extend_from_slice(t);
            }
            let graphs =
                Tensor::from_vec(vec![m, IMAGE_CHANNELS, IMAGE_SIZE, IMAGE_SIZE], graph_data)
                    .expect("extracted graph vectors have the fixed length");
            let tab_raw = Tensor::from_vec(vec![m, TABULAR_DIM], tab_data)
                .expect("extracted tabular vectors have the fixed length");

            let mut probes: Option<Vec<Vec<SourceProbe>>> =
                self.audit.is_some().then(|| vec![Vec::new(); m]);
            let batch_start = Instant::now();
            let prof_start_ns = noodle_profile::now_ns();
            // The shared forward pass is attributed to the chunk's first
            // design (a micro-batch has no single owner; first-in-chunk is
            // deterministic and cheap to compute when reading a trace).
            let chunk_trace = noodle_trace::set_current(request_ctx(chunk_start));
            let predictions =
                self.conformal_batch(&graphs, &tab_raw, strategy, probes.as_mut(), &mut arena);
            noodle_profile::record(
                noodle_profile::EventKind::BatchInfer,
                prof_start_ns,
                noodle_profile::now_ns().saturating_sub(prof_start_ns),
                0,
                (4 * (graphs.len() + tab_raw.len())) as u64,
            );
            drop(chunk_trace);
            let batch_us = batch_start.elapsed().as_secs_f64() * 1e6;
            let per_file_us = batch_us / m as f64;
            noodle_telemetry::histogram_record("detect.batch_size", m as f64);

            for (j, prediction) in predictions.into_iter().enumerate() {
                let idx = chunk_start + j;
                let r = &requests[idx];
                let request = request_ctx(idx);
                let _req_trace = noodle_trace::set_current(request);
                noodle_telemetry::counter_add("detect.calls", 1);
                noodle_telemetry::histogram_record("detect.latency_us", per_file_us);
                let detection = self.decision(prediction, strategy, false);
                let file_probes =
                    probes.as_mut().map_or_else(Vec::new, |p| std::mem::take(&mut p[j]));
                self.emit_audit(
                    r.design,
                    r.label,
                    &detection,
                    true,
                    true,
                    file_probes,
                    AuditTiming {
                        latency_us: per_file_us,
                        batch_latency_us: batch_us,
                        batch_size: m,
                    },
                );
                // A per-design marker on the profiler timeline (its batch
                // share of the forward) plus a flight-recorder summary, so
                // one trace id greps across audit, Chrome trace and ring.
                noodle_profile::record_span(
                    "detect.request",
                    prof_start_ns,
                    (per_file_us * 1e3) as u64,
                );
                noodle_trace::flight_record(
                    noodle_trace::FlightKind::Request,
                    request.trace_id,
                    request.span_id,
                    idx as u64,
                    u64::from(detection.infected),
                    r.design,
                );
                detections.push(detection);
            }
            chunk_start += m;
        }

        let elapsed = started.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            noodle_telemetry::gauge_set("detect.files_per_sec", n as f64 / elapsed);
        }
        Ok(detections)
    }

    /// Batched [`NoodleDetector::conformal_for`]: one forward pass per
    /// micro-batch through the inference arena. Normalization, the CNN
    /// kernels and softmax all operate row-by-row, so row `i` here is
    /// bit-identical to a batch-of-one call on sample `i` alone.
    fn conformal_batch(
        &self,
        graphs: &Tensor,
        tab_raw: &Tensor,
        strategy: FusionStrategy,
        mut probes: Option<&mut Vec<Vec<SourceProbe>>>,
        arena: &mut InferArena,
    ) -> Vec<ConformalPrediction> {
        let m = graphs.shape()[0];
        let quant = self.active_quantized();
        let tab_norm = self.tabular_norm.transform(tab_raw);
        match strategy {
            FusionStrategy::GraphOnly => conformal_rows(
                &self.graph_clf,
                quant.map(|q| q.for_kind(ModalityKind::Graph)),
                &self.icp_graph,
                graphs,
                "graph",
                &mut probes,
                arena,
            )
            .into_iter()
            .map(ConformalPrediction::new)
            .collect(),
            FusionStrategy::TabularOnly => {
                let tab_t = tab_norm
                    .reshape(&[m, 1, TABULAR_DIM])
                    .expect("reshape keeps the element count");
                conformal_rows(
                    &self.tabular_clf,
                    quant.map(|q| q.for_kind(ModalityKind::Tabular)),
                    &self.icp_tabular,
                    &tab_t,
                    "tabular",
                    &mut probes,
                    arena,
                )
                .into_iter()
                .map(ConformalPrediction::new)
                .collect()
            }
            FusionStrategy::EarlyFusion => {
                let mut rows = Vec::with_capacity(m * (GRAPH_DIM + TABULAR_DIM));
                for i in 0..m {
                    rows.extend_from_slice(&graphs.data()[i * GRAPH_DIM..(i + 1) * GRAPH_DIM]);
                    rows.extend_from_slice(tab_norm.row(i));
                }
                let early = Tensor::from_vec(vec![m, 1, GRAPH_DIM + TABULAR_DIM], rows)
                    .expect("concatenation length is fixed");
                conformal_rows(
                    &self.early_clf,
                    quant.map(|q| q.for_kind(ModalityKind::EarlyFusion)),
                    &self.icp_early,
                    &early,
                    "early_fusion",
                    &mut probes,
                    arena,
                )
                .into_iter()
                .map(ConformalPrediction::new)
                .collect()
            }
            FusionStrategy::LateFusion => {
                let tab_t = tab_norm
                    .reshape(&[m, 1, TABULAR_DIM])
                    .expect("reshape keeps the element count");
                let pg = conformal_rows(
                    &self.graph_clf,
                    quant.map(|q| q.for_kind(ModalityKind::Graph)),
                    &self.icp_graph,
                    graphs,
                    "graph",
                    &mut probes,
                    arena,
                );
                let pt = conformal_rows(
                    &self.tabular_clf,
                    quant.map(|q| q.for_kind(ModalityKind::Tabular)),
                    &self.icp_tabular,
                    &tab_t,
                    "tabular",
                    &mut probes,
                    arena,
                );
                pg.into_iter()
                    .zip(pt)
                    .map(|(pg, pt)| {
                        let fused: Vec<f64> =
                            (0..2).map(|c| self.config.combiner.combine(&[pg[c], pt[c]])).collect();
                        ConformalPrediction::new(fused)
                    })
                    .collect()
            }
        }
    }

    /// Runs [`NoodleDetector::conformal_for`], collecting per-source
    /// conformal evidence only when an audit sink is attached (the probe
    /// vector stays unallocated otherwise).
    fn predict_with_optional_probes(
        &mut self,
        graph: &[f32],
        tabular: &[f32],
        strategy: FusionStrategy,
    ) -> (ConformalPrediction, Vec<SourceProbe>) {
        let mut probes = Vec::new();
        let want_probes = self.audit.is_some();
        let prediction =
            self.conformal_for(graph, tabular, strategy, want_probes.then_some(&mut probes));
        (prediction, probes)
    }

    /// Emits one audit record when a sink is attached; a no-op otherwise.
    #[allow(clippy::too_many_arguments)]
    fn emit_audit(
        &mut self,
        design: &str,
        label: Option<usize>,
        detection: &Detection,
        graph_present: bool,
        tabular_present: bool,
        probes: Vec<SourceProbe>,
        timing: AuditTiming,
    ) {
        if self.audit.is_none() {
            return;
        }
        let seq = self.audit_seq;
        self.audit_seq += 1;
        let p = detection.prediction.p_values();
        let record = PredictionRecord {
            seq,
            design: design.to_string(),
            trace_id: noodle_trace::current()
                .map_or_else(String::new, |c| noodle_trace::format_trace_id(c.trace_id)),
            strategy: format!("{:?}", detection.strategy),
            infected: detection.infected,
            probability_infected: detection.probability_infected,
            p_values: [p[0], p[1]],
            region: detection.region.clone(),
            credibility: detection.credibility,
            confidence: detection.confidence,
            uncertain: detection.uncertain,
            significance: self.config.significance,
            graph_present,
            tabular_present,
            imputed_modality: detection.imputed_modality,
            label,
            latency_us: timing.latency_us,
            batch_latency_us: timing.batch_latency_us,
            batch_size: timing.batch_size,
            sources: probes,
        };
        emit_if(self.audit.as_deref_mut(), move || record);
    }

    /// One CNN forward for a single design through whichever serving path
    /// is active: the float network, or the int8 twin when quantized
    /// serving is on. Bit-identical to the corresponding batched forward
    /// (both paths are row-independent).
    fn serve_proba(&mut self, kind: ModalityKind, input: &Tensor) -> Tensor {
        if let Some(q) = self.active_quantized() {
            let mut arena = InferArena::new();
            return q.for_kind(kind).infer_proba(input, &mut arena).clone();
        }
        match kind {
            ModalityKind::Graph => self.graph_clf.predict_proba(input),
            ModalityKind::Tabular => self.tabular_clf.predict_proba(input),
            ModalityKind::EarlyFusion => self.early_clf.predict_proba(input),
        }
    }

    fn conformal_for(
        &mut self,
        graph: &[f32],
        tabular: &[f32],
        strategy: FusionStrategy,
        mut probes: Option<&mut Vec<SourceProbe>>,
    ) -> ConformalPrediction {
        let graph_t =
            Tensor::from_vec(vec![1, IMAGE_CHANNELS, IMAGE_SIZE, IMAGE_SIZE], graph.to_vec())
                .expect("graph vector length is validated");
        let tab_raw = Tensor::from_vec(vec![1, TABULAR_DIM], tabular.to_vec())
            .expect("tabular vector length is validated");
        let tab_norm = self.tabular_norm.transform(&tab_raw);
        let tab_t =
            tab_norm.reshape(&[1, 1, TABULAR_DIM]).expect("reshape keeps the element count");
        match strategy {
            FusionStrategy::GraphOnly => {
                let proba = self.serve_proba(ModalityKind::Graph, &graph_t);
                let scores = scores_from_proba(proba.row(0));
                let p = self.icp_graph.p_values(&scores);
                push_probe(&mut probes, "graph", &p, &scores);
                ConformalPrediction::new(p)
            }
            FusionStrategy::TabularOnly => {
                let proba = self.serve_proba(ModalityKind::Tabular, &tab_t);
                let scores = scores_from_proba(proba.row(0));
                let p = self.icp_tabular.p_values(&scores);
                push_probe(&mut probes, "tabular", &p, &scores);
                ConformalPrediction::new(p)
            }
            FusionStrategy::EarlyFusion => {
                let mut row = graph.to_vec();
                row.extend_from_slice(tab_norm.row(0));
                let early = Tensor::from_vec(vec![1, 1, GRAPH_DIM + TABULAR_DIM], row)
                    .expect("concatenation length is fixed");
                let proba = self.serve_proba(ModalityKind::EarlyFusion, &early);
                let scores = scores_from_proba(proba.row(0));
                let p = self.icp_early.p_values(&scores);
                push_probe(&mut probes, "early_fusion", &p, &scores);
                ConformalPrediction::new(p)
            }
            FusionStrategy::LateFusion => {
                let pg = {
                    let proba = self.serve_proba(ModalityKind::Graph, &graph_t);
                    let scores = scores_from_proba(proba.row(0));
                    let p = self.icp_graph.p_values(&scores);
                    push_probe(&mut probes, "graph", &p, &scores);
                    p
                };
                let pt = {
                    let proba = self.serve_proba(ModalityKind::Tabular, &tab_t);
                    let scores = scores_from_proba(proba.row(0));
                    let p = self.icp_tabular.p_values(&scores);
                    push_probe(&mut probes, "tabular", &p, &scores);
                    p
                };
                let fused: Vec<f64> =
                    (0..2).map(|c| self.config.combiner.combine(&[pg[c], pt[c]])).collect();
                ConformalPrediction::new(fused)
            }
        }
    }

    fn decision(
        &self,
        prediction: ConformalPrediction,
        strategy: FusionStrategy,
        imputed: bool,
    ) -> Detection {
        let region = prediction.region(self.config.significance);
        let p = prediction.p_values();
        Detection {
            infected: prediction.point_prediction() == 1,
            probability_infected: p[1] / (p[0] + p[1]),
            region: region.clone(),
            credibility: prediction.credibility(),
            confidence: prediction.confidence(),
            uncertain: region.len() > 1,
            imputed_modality: imputed,
            strategy,
            prediction,
        }
    }
}

/// Builds the amplified working set and split for a real-holdout fit: the
/// pool (everything outside `test_indices`) is GAN-amplified and split into
/// train/calibration; the held-out real designs are appended as the test
/// part.
fn prepare_holdout<R: Rng + ?Sized>(
    dataset: &MultimodalDataset,
    test_indices: &[usize],
    config: &NoodleConfig,
    split_seed: u64,
    rng: &mut R,
) -> (MultimodalDataset, Split) {
    let pool_indices: Vec<usize> =
        (0..dataset.len()).filter(|i| !test_indices.contains(i)).collect();
    let pool = dataset.subset(&pool_indices);
    let mut amplified = amplify_dataset(&pool, config.amplify_per_class, &config.gan, rng);
    let inner_frac = config.train_frac / (config.train_frac + config.calib_frac);
    let inner = amplified.split(inner_frac - 1e-9, (1.0 - inner_frac) / 2.0, split_seed ^ 0xA5A5);
    let offset = amplified.len();
    for &i in test_indices {
        amplified.push(dataset.samples()[i].clone());
    }
    let test: Vec<usize> = (offset..amplified.len()).collect();
    let split = Split {
        train: inner.train,
        // Calibration must stay disjoint from training; fold the inner test
        // remnant into calibration rather than waste it.
        calibration: inner.calibration.into_iter().chain(inner.test).collect(),
        test,
    };
    (amplified, split)
}

/// Converts `[1, 2]` softmax probabilities to per-class nonconformity
/// scores (Eq. 4 with a single classifier).
fn scores_from_proba(row: &[f32]) -> Vec<f32> {
    row.iter().map(|&p| nonconformity_from_proba(p)).collect()
}

/// Records one source's conformal evidence when probes are being gathered.
fn push_probe(
    probes: &mut Option<&mut Vec<SourceProbe>>,
    source: &str,
    p_values: &[f64],
    scores: &[f32],
) {
    if let Some(probes) = probes.as_deref_mut() {
        probes.push(SourceProbe {
            source: source.to_string(),
            p_values: [p_values[0], p_values[1]],
            scores: [scores[0] as f64, scores[1] as f64],
        });
    }
}

/// Runs one classifier over a whole micro-batch through the inference
/// arena and converts every row to per-class conformal p-values, recording
/// one probe per file when audit evidence is being gathered. When `quant`
/// is present the CNN forward serves from the int8 twin instead of the
/// float network; everything downstream is identical.
#[allow(clippy::too_many_arguments)]
fn conformal_rows(
    clf: &ModalityClassifier,
    quant: Option<&QuantizedModel>,
    icp: &MondrianIcp,
    inputs: &Tensor,
    source: &str,
    probes: &mut Option<&mut Vec<Vec<SourceProbe>>>,
    arena: &mut InferArena,
) -> Vec<Vec<f64>> {
    let proba = match quant {
        Some(q) => q.infer_proba(inputs, arena),
        None => clf.infer_proba(inputs, arena),
    };
    let m = proba.shape()[0];
    let mut all = Vec::with_capacity(m);
    for i in 0..m {
        let scores = scores_from_proba(proba.row(i));
        let p = icp.p_values(&scores);
        if let Some(per_file) = probes.as_deref_mut() {
            push_probe(&mut Some(&mut per_file[i]), source, &p, &scores);
        }
        all.push(p);
    }
    all
}

/// Calibrates one p-value source and snapshots its predicted-class
/// (minimum) nonconformity scores — the statistic the serve-time drift
/// monitor sees, so the persisted PSI baseline compares like with like
/// (true-class scores have a different upper tail on misclassified
/// samples).
fn calibrate(
    clf: &mut ModalityClassifier,
    inputs: &Tensor,
    labels: &[usize],
) -> Result<(MondrianIcp, Vec<f64>), PipelineError> {
    let _span = noodle_telemetry::span!(
        "icp.calibrate",
        modality = clf.modality_name(),
        samples = labels.len(),
    );
    let proba = clf.predict_proba(inputs);
    let scores: Vec<(f32, usize)> = labels
        .iter()
        .enumerate()
        .map(|(i, &y)| (nonconformity_from_proba(proba.row(i)[y]), y))
        .collect();
    let min_scores: Vec<f64> = (0..labels.len())
        .map(|i| {
            scores_from_proba(proba.row(i)).into_iter().fold(f64::INFINITY, |m, s| m.min(s as f64))
        })
        .collect();
    Ok((MondrianIcp::fit(&scores, 2)?, min_scores))
}

/// Builds one classifier's int8 serving twin and scores both paths on the
/// calibration set, returning `(twin, (brier_f32, brier_int8))`.
fn quantize_source(
    clf: &mut ModalityClassifier,
    calib: &Tensor,
    outcomes: &[bool],
    arena: &mut InferArena,
) -> (QuantizedModel, (f64, f64)) {
    let quant = clf.quantize(calib);
    let f_proba = clf.predict_proba(calib);
    let f32_probs: Vec<f64> = (0..outcomes.len()).map(|i| f_proba.row(i)[1] as f64).collect();
    let q_proba = quant.infer_proba(calib, arena);
    let q_probs: Vec<f64> = (0..outcomes.len()).map(|i| q_proba.row(i)[1] as f64).collect();
    (quant, (brier_score(&f32_probs, outcomes), brier_score(&q_probs, outcomes)))
}

fn tab_input(dataset: &MultimodalDataset, indices: &[usize], norm: &ZScore) -> Tensor {
    norm.transform(&dataset.tabular_matrix(indices))
        .reshape(&[indices.len(), 1, TABULAR_DIM])
        .expect("reshape keeps the element count")
}

fn early_input(dataset: &MultimodalDataset, indices: &[usize], norm: &ZScore) -> Tensor {
    let graph = dataset.graph_matrix(indices);
    let tab = norm.transform(&dataset.tabular_matrix(indices));
    Tensor::concat_cols(&[&graph, &tab])
        .expect("row counts match by construction")
        .reshape(&[indices.len(), 1, GRAPH_DIM + TABULAR_DIM])
        .expect("reshape keeps the element count")
}

#[cfg(test)]
mod tests {
    use super::*;
    use noodle_bench_gen::{generate_corpus, CorpusConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fitted() -> NoodleDetector {
        let corpus =
            generate_corpus(&CorpusConfig { trojan_free: 14, trojan_infected: 7, seed: 11 });
        let dataset = MultimodalDataset::from_benchmarks(&corpus).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        NoodleDetector::fit(&dataset, &NoodleConfig::fast(), &mut rng).unwrap()
    }

    #[test]
    fn fit_produces_complete_evaluation() {
        let det = fitted();
        let eval = det.evaluation();
        assert!(!eval.test_labels.is_empty());
        assert_eq!(eval.graph_probs.len(), eval.test_labels.len());
        assert_eq!(eval.late_probs.len(), eval.test_labels.len());
        assert_eq!(eval.late_p_values.len(), eval.test_labels.len());
        for &b in &eval.brier {
            assert!((0.0..=1.0).contains(&b), "brier {b}");
        }
        for &p in eval.graph_probs.iter().chain(&eval.late_probs) {
            assert!((0.0..=1.0).contains(&p), "prob {p}");
        }
        assert!(matches!(eval.winner, FusionStrategy::EarlyFusion | FusionStrategy::LateFusion));
    }

    #[test]
    fn detect_classifies_new_designs() {
        let mut det = fitted();
        let probe =
            generate_corpus(&CorpusConfig { trojan_free: 1, trojan_infected: 1, seed: 999 });
        for bench in &probe {
            let d = det.detect(&bench.source).unwrap();
            assert!((0.0..=1.0).contains(&d.probability_infected));
            assert!(d.credibility > 0.0 && d.credibility <= 1.0);
            assert!(d.confidence >= 0.0 && d.confidence <= 1.0);
            assert_eq!(d.prediction.p_values().len(), 2);
        }
    }

    #[test]
    fn detect_rejects_garbage() {
        let mut det = fitted();
        assert!(det.detect("module broken(").is_err());
    }

    #[test]
    fn all_strategies_produce_decisions() {
        let mut det = fitted();
        let probe = generate_corpus(&CorpusConfig { trojan_free: 1, trojan_infected: 0, seed: 5 });
        for strategy in FusionStrategy::ALL {
            let d = det.detect_with_strategy(&probe[0].source, strategy).unwrap();
            assert_eq!(d.strategy, strategy);
        }
    }

    #[test]
    fn missing_modality_requires_imputers() {
        let mut det = fitted(); // fast() config: imputers off
        let g = vec![0.0; GRAPH_DIM];
        let err = det.detect_features(Some(&g), None).unwrap_err();
        assert!(err.to_string().contains("imputers"));
        assert!(det.detect_features(None, None).is_err());
    }

    #[test]
    fn feature_length_is_validated() {
        let mut det = fitted();
        assert!(det.detect_features(Some(&[0.0; 3]), None).is_err());
        assert!(det.detect_features(None, Some(&[0.0; 3])).is_err());
    }

    #[test]
    fn rejects_tiny_dataset() {
        let corpus = generate_corpus(&CorpusConfig { trojan_free: 3, trojan_infected: 1, seed: 1 });
        let dataset = MultimodalDataset::from_benchmarks(&corpus).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(NoodleDetector::fit(&dataset, &NoodleConfig::fast(), &mut rng).is_err());
    }

    #[test]
    fn holdout_protocol_tests_only_real_designs() {
        let corpus =
            generate_corpus(&CorpusConfig { trojan_free: 14, trojan_infected: 7, seed: 21 });
        let dataset = MultimodalDataset::from_benchmarks(&corpus).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let config = NoodleConfig { holdout_real_test: true, ..NoodleConfig::fast() };
        let det = NoodleDetector::fit(&dataset, &config, &mut rng).unwrap();
        let eval = det.evaluation();
        assert!(!eval.test_names.is_empty());
        // Every test design must be a real corpus design, never synthetic.
        for name in &eval.test_names {
            assert!(
                corpus.iter().any(|b| &b.name == name),
                "test design `{name}` is not a real corpus member"
            );
            assert!(!name.starts_with("syn_"), "synthetic sample in test: {name}");
        }
        // Both classes are present in the real test set.
        assert!(eval.test_labels.contains(&0));
        assert!(eval.test_labels.contains(&1));
    }

    #[test]
    fn detector_json_round_trip_preserves_decisions() {
        let mut det = fitted();
        let probe =
            generate_corpus(&CorpusConfig { trojan_free: 2, trojan_infected: 1, seed: 777 });
        let json = det.to_json().unwrap();
        let mut restored = NoodleDetector::from_json(&json).unwrap();
        for bench in &probe {
            let a = det.detect(&bench.source).unwrap();
            let b = restored.detect(&bench.source).unwrap();
            assert_eq!(a.infected, b.infected);
            assert!((a.probability_infected - b.probability_infected).abs() < 1e-12);
            assert_eq!(a.prediction.p_values(), b.prediction.p_values());
        }
        // Float JSON round-trips can wobble in the last bit; the captured
        // evaluation must survive within that tolerance.
        assert_eq!(det.evaluation().test_names, restored.evaluation().test_names);
        for (a, b) in det.evaluation().brier.iter().zip(&restored.evaluation().brier) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn detect_batch_matches_sequential_bitwise() {
        let mut det = fitted();
        let probe = generate_corpus(&CorpusConfig { trojan_free: 3, trojan_infected: 2, seed: 77 });
        let sequential: Vec<Detection> =
            probe.iter().map(|b| det.detect_named(&b.name, &b.source, None).unwrap()).collect();
        let requests: Vec<DetectRequest<'_>> = probe
            .iter()
            .map(|b| DetectRequest { design: &b.name, source: &b.source, label: None, trace: None })
            .collect();
        for batch in [1, 2, 5, 8] {
            let batched = det.detect_batch(&requests, batch, None).unwrap();
            assert_eq!(batched, sequential, "batch={batch} diverges from sequential");
        }
    }

    #[test]
    fn detect_batch_surfaces_the_first_error_in_request_order() {
        let mut det = fitted();
        let good = generate_corpus(&CorpusConfig { trojan_free: 1, trojan_infected: 0, seed: 6 });
        let requests = [
            DetectRequest { design: "ok", source: &good[0].source, label: None, trace: None },
            DetectRequest { design: "bad", source: "module broken(", label: None, trace: None },
        ];
        assert!(det.detect_batch(&requests, 32, None).is_err());
        // An empty batch is a no-op, not an error.
        assert!(det.detect_batch(&[], 32, None).unwrap().is_empty());
    }

    #[test]
    fn detect_batch_reuses_cached_features() {
        use crate::feature_cache::FeatureCache;

        let mut det = fitted();
        let probe = generate_corpus(&CorpusConfig { trojan_free: 2, trojan_infected: 1, seed: 9 });
        let requests: Vec<DetectRequest<'_>> = probe
            .iter()
            .map(|b| DetectRequest { design: &b.name, source: &b.source, label: None, trace: None })
            .collect();
        let mut cache = FeatureCache::new(16);
        let cold = det.detect_batch(&requests, 4, Some(&mut cache)).unwrap();
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.stats().hits, 0);
        let warm = det.detect_batch(&requests, 4, Some(&mut cache)).unwrap();
        assert_eq!(cache.stats().hits, 3);
        assert_eq!(cold, warm, "cached features must reproduce the cold verdicts");
    }

    /// The quantized-serving golden gate: on the seed corpus the int8
    /// path must produce zero verdict flips against the float path, keep
    /// p-values close, and not regress the calibration-set Brier score
    /// beyond the quantization budget.
    #[test]
    fn quantized_serving_preserves_verdicts_on_the_seed_corpus() {
        let mut det = fitted();
        let probe = generate_corpus(&CorpusConfig { trojan_free: 3, trojan_infected: 2, seed: 77 });
        let requests: Vec<DetectRequest<'_>> = probe
            .iter()
            .map(|b| DetectRequest { design: &b.name, source: &b.source, label: None, trace: None })
            .collect();
        let float = det.detect_batch(&requests, 32, None).unwrap();
        det.set_quantized(true).unwrap();
        assert!(det.is_quantized());
        let quant = det.detect_batch(&requests, 32, None).unwrap();

        let flips = float.iter().zip(&quant).filter(|(f, q)| f.infected != q.infected).count();
        assert_eq!(flips, 0, "quantization flipped {flips} verdicts on the seed corpus");
        for (f, q) in float.iter().zip(&quant) {
            let (pf, pq) = (f.prediction.p_values(), q.prediction.p_values());
            for c in 0..2 {
                assert!(
                    (pf[c] - pq[c]).abs() < 0.25,
                    "class-{c} p-value drifted under int8: {} vs {}",
                    pf[c],
                    pq[c]
                );
            }
        }

        // Brier regression gate: the int8 twins may cost at most 0.02
        // Brier on the calibration set, per source.
        let nets = det.quantized_nets().expect("fit persists the quantized section");
        for (source, (f, q)) in ["graph", "tabular", "early_fusion"]
            .iter()
            .zip(nets.calib_brier_f32().into_iter().zip(nets.calib_brier_int8()))
        {
            assert!((0.0..=1.0).contains(&q), "{source} int8 brier {q}");
            assert!(q <= f + 0.02, "{source} calibration Brier regressed under int8: {q} vs {f}");
        }
    }

    #[test]
    fn quantized_batch_matches_sequential_and_round_trips() {
        let mut det = fitted();
        det.set_quantized(true).unwrap();
        let probe = generate_corpus(&CorpusConfig { trojan_free: 2, trojan_infected: 2, seed: 55 });
        let sequential: Vec<Detection> =
            probe.iter().map(|b| det.detect_named(&b.name, &b.source, None).unwrap()).collect();
        let requests: Vec<DetectRequest<'_>> = probe
            .iter()
            .map(|b| DetectRequest { design: &b.name, source: &b.source, label: None, trace: None })
            .collect();
        for batch in [1, 3, 8] {
            let batched = det.detect_batch(&requests, batch, None).unwrap();
            assert_eq!(batched, sequential, "quantized batch={batch} diverges from sequential");
        }

        // The quantized section (and its decisions) survive model JSON.
        let json = det.to_json().unwrap();
        let mut restored = NoodleDetector::from_json(&json).unwrap();
        assert!(restored.quantized_nets().is_some());
        restored.set_quantized(true).unwrap();
        let replayed = restored.detect_batch(&requests, 8, None).unwrap();
        for (a, b) in sequential.iter().zip(&replayed) {
            assert_eq!(a.infected, b.infected);
            assert_eq!(a.prediction.p_values(), b.prediction.p_values());
        }

        // A model stripped of its quantized section (e.g. fitted before
        // the int8 path existed) still loads, but refuses to enable it.
        let mut value: serde_json::Value = serde_json::from_str(&json).unwrap();
        value.as_object_mut().unwrap().remove("quantized");
        let mut stripped = NoodleDetector::from_json(&value.to_string()).unwrap();
        assert!(stripped.quantized_nets().is_none());
        assert!(stripped.set_quantized(true).is_err());
        stripped.set_quantized(false).unwrap();
        assert!(!stripped.is_quantized());
    }

    #[test]
    fn strategy_labels_match_table_one() {
        assert_eq!(FusionStrategy::GraphOnly.label(), "Graph-based Data");
        assert!(FusionStrategy::LateFusion.label().contains("Late Fusion"));
    }

    #[test]
    fn fit_persists_a_calibration_baseline() {
        let det = fitted();
        let baseline = det.baseline().expect("fit captures a baseline");
        for source in ["graph", "tabular", "early_fusion"] {
            let b = baseline.sources.get(source).unwrap_or_else(|| panic!("no {source} baseline"));
            assert_eq!(b.n, baseline.calibration_count);
            assert!(!b.edges.is_empty());
            let sum: f64 = b.expected.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
        assert!(baseline.class_balance > 0.0 && baseline.class_balance < 1.0);
        assert!((baseline.significance - det.config().significance).abs() < 1e-12);
        assert!(baseline.calibration_count > 0);
        assert!((baseline.winner_brier - det.evaluation().brier_of(det.winner())).abs() < 1e-12);

        // The baseline survives model serialization.
        let restored = NoodleDetector::from_json(&det.to_json().unwrap()).unwrap();
        assert_eq!(restored.baseline(), det.baseline());
    }

    #[test]
    fn audit_sink_receives_header_and_records() {
        use noodle_observe::MemoryAudit;

        let mut det = fitted();
        let sink = MemoryAudit::new();
        det.set_audit_sink(Box::new(sink.clone()));

        let header = sink.header().expect("header emitted on attach");
        assert_eq!(header.schema_version, noodle_observe::AUDIT_SCHEMA_VERSION);
        assert!((header.significance - det.config().significance).abs() < 1e-12);
        assert_eq!(header.strategy, format!("{:?}", det.winner()));
        assert_eq!(header.simd, noodle_compute::active_isa().name());
        assert!(!header.quantized, "float serving is the default");
        assert!(header.baseline.is_some());

        let probe =
            generate_corpus(&CorpusConfig { trojan_free: 2, trojan_infected: 1, seed: 321 });
        for bench in &probe {
            det.detect_named(&bench.name, &bench.source, Some(bench.label.index())).unwrap();
        }
        let records = sink.records();
        assert_eq!(records.len(), probe.len());
        for (i, (record, bench)) in records.iter().zip(&probe).enumerate() {
            assert_eq!(record.seq, i as u64);
            assert_eq!(record.design, bench.name);
            assert_eq!(record.label, Some(bench.label.index()));
            assert_eq!(record.strategy, format!("{:?}", det.winner()));
            assert!(record.graph_present && record.tabular_present);
            assert!(!record.imputed_modality);
            assert!(record.p_values.iter().all(|&p| p > 0.0 && p <= 1.0));
            assert!(!record.sources.is_empty());
            for probe in &record.sources {
                assert!(probe.p_values.iter().all(|&p| p > 0.0 && p <= 1.0));
            }
        }

        // Detaching stops emission.
        assert!(det.take_audit_sink().is_some());
        det.detect(&probe[0].source).unwrap();
        assert_eq!(sink.records().len(), probe.len());
    }

    #[test]
    fn unaudited_detect_matches_audited_decisions() {
        use noodle_observe::MemoryAudit;

        let mut plain = fitted();
        let mut audited = fitted();
        let sink = MemoryAudit::new();
        audited.set_audit_sink(Box::new(sink.clone()));
        let probe =
            generate_corpus(&CorpusConfig { trojan_free: 1, trojan_infected: 1, seed: 4242 });
        for bench in &probe {
            let a = plain.detect(&bench.source).unwrap();
            let b = audited.detect(&bench.source).unwrap();
            assert_eq!(a.infected, b.infected);
            assert_eq!(a.prediction.p_values(), b.prediction.p_values());
        }
        // The audited run produced matching records.
        let records = sink.records();
        assert_eq!(records.len(), probe.len());
        assert!(records.iter().all(|r| r.latency_us > 0.0));
    }
}
