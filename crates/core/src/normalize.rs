//! Z-score feature normalization fitted on training data.

use noodle_nn::Tensor;
use serde::{Deserialize, Serialize};

/// Per-feature z-score normalizer (`(x - mean) / std`), with constant
/// features mapped to 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZScore {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl ZScore {
    /// Fits the normalizer on a `[n, d]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not rank 2 or has no rows.
    pub fn fit(data: &Tensor) -> Self {
        assert_eq!(data.ndim(), 2, "ZScore expects [n, d] data");
        let (n, d) = (data.shape()[0], data.shape()[1]);
        assert!(n > 0, "cannot fit a normalizer on zero rows");
        let mut means = vec![0.0f32; d];
        for r in 0..n {
            for (c, &v) in data.row(r).iter().enumerate() {
                means[c] += v / n as f32;
            }
        }
        let mut stds = vec![0.0f32; d];
        for r in 0..n {
            for (c, &v) in data.row(r).iter().enumerate() {
                stds[c] += (v - means[c]) * (v - means[c]) / n as f32;
            }
        }
        for s in &mut stds {
            *s = s.sqrt();
        }
        Self { means, stds }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Normalizes a `[n, d]` matrix.
    ///
    /// # Panics
    ///
    /// Panics on a feature-count mismatch.
    pub fn transform(&self, data: &Tensor) -> Tensor {
        assert_eq!(data.shape()[1], self.dim(), "feature count mismatch");
        let (n, d) = (data.shape()[0], data.shape()[1]);
        let mut out = data.clone();
        let values = out.data_mut();
        for r in 0..n {
            for c in 0..d {
                let idx = r * d + c;
                values[idx] = if self.stds[c] > 1e-8 {
                    (values[idx] - self.means[c]) / self.stds[c]
                } else {
                    0.0
                };
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_data_has_zero_mean_unit_std() {
        let data = Tensor::from_vec(vec![4, 1], vec![2.0, 4.0, 6.0, 8.0]).unwrap();
        let z = ZScore::fit(&data);
        let out = z.transform(&data);
        let mean: f32 = out.data().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        let var: f32 = out.data().iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!((var - 1.0).abs() < 1e-5);
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let data = Tensor::from_vec(vec![3, 2], vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0]).unwrap();
        let z = ZScore::fit(&data);
        let out = z.transform(&data);
        assert_eq!(out.at(&[0, 0]), 0.0);
        assert_eq!(out.at(&[2, 0]), 0.0);
    }

    #[test]
    fn transform_applies_train_statistics_to_new_data() {
        let train = Tensor::from_vec(vec![2, 1], vec![0.0, 2.0]).unwrap();
        let z = ZScore::fit(&train);
        let test = Tensor::from_vec(vec![1, 1], vec![4.0]).unwrap();
        // mean 1, std 1 → (4 - 1) / 1 = 3
        assert!((z.transform(&test).at(&[0, 0]) - 3.0).abs() < 1e-6);
    }
}
