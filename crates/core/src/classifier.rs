//! The CNN classifiers, one per modality plus the early-fusion network.
//!
//! The paper stresses that every modality uses "the same CNN-based deep
//! learning model with identical hyperparameters"; the three builders here
//! share the same depth, channel counts, kernel sizes, dropout rate and
//! head width — only the input adapter differs (2-D for the graph image,
//! 1-D for the tabular vector and the early-fusion concatenation).

use noodle_nn::{
    fit_classifier, Activation, Conv1d, Conv2d, Dense, Dropout, EpochStats, Flatten, InferArena,
    MaxPool1d, MaxPool2d, QuantizedModel, Sequential, Tensor, TrainConfig,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::{GRAPH_DIM, TABULAR_DIM};
use noodle_graph::{IMAGE_CHANNELS, IMAGE_SIZE};

/// Which input a classifier consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModalityKind {
    /// The 2-D graph image.
    Graph,
    /// The 1-D tabular feature vector.
    Tabular,
    /// The 1-D concatenation of both modalities (early fusion).
    EarlyFusion,
}

/// Shared CNN hyperparameters (identical across modalities, per the paper).
const CONV_CHANNELS: (usize, usize) = (8, 16);
const KERNEL: usize = 3;
const DROPOUT: f32 = 0.2;
const HEAD_WIDTH: usize = 32;
const N_CLASSES: usize = 2;

/// A CNN classifier for one modality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModalityClassifier {
    kind: ModalityKind,
    net: Sequential,
}

impl ModalityClassifier {
    /// Builds an untrained classifier for the given modality.
    pub fn new<R: Rng + ?Sized>(kind: ModalityKind, rng: &mut R) -> Self {
        let (c1, c2) = CONV_CHANNELS;
        let net = match kind {
            ModalityKind::Graph => {
                // [B, 2, 12, 12] -> conv -> pool -> conv -> pool -> head
                let after_pool = IMAGE_SIZE / 2 / 2; // 3
                Sequential::new(vec![
                    Conv2d::new(IMAGE_CHANNELS, c1, KERNEL, 1, rng).into(),
                    Activation::relu().into(),
                    MaxPool2d::new(2).into(),
                    Conv2d::new(c1, c2, KERNEL, 1, rng).into(),
                    Activation::relu().into(),
                    MaxPool2d::new(2).into(),
                    Flatten::new().into(),
                    Dropout::new(DROPOUT, 17).into(),
                    Dense::new(c2 * after_pool * after_pool, HEAD_WIDTH, rng).into(),
                    Activation::relu().into(),
                    Dense::new(HEAD_WIDTH, N_CLASSES, rng).into(),
                ])
            }
            ModalityKind::Tabular => build_1d(TABULAR_DIM, rng),
            ModalityKind::EarlyFusion => build_1d(GRAPH_DIM + TABULAR_DIM, rng),
        };
        Self { kind, net }
    }

    /// The modality this classifier consumes.
    pub fn kind(&self) -> ModalityKind {
        self.kind
    }

    /// Short lowercase modality name used in telemetry attributes.
    pub fn modality_name(&self) -> &'static str {
        match self.kind {
            ModalityKind::Graph => "graph",
            ModalityKind::Tabular => "tabular",
            ModalityKind::EarlyFusion => "early_fusion",
        }
    }

    /// Expected input shape (without the batch dimension).
    pub fn input_shape(&self) -> Vec<usize> {
        match self.kind {
            ModalityKind::Graph => vec![IMAGE_CHANNELS, IMAGE_SIZE, IMAGE_SIZE],
            ModalityKind::Tabular => vec![1, TABULAR_DIM],
            ModalityKind::EarlyFusion => vec![1, GRAPH_DIM + TABULAR_DIM],
        }
    }

    /// Trains the classifier; returns the per-epoch loss trace.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match [`Self::input_shape`] (plus batch
    /// dimension) or if `labels` disagree in length.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        inputs: &Tensor,
        labels: &[usize],
        config: &TrainConfig,
        rng: &mut R,
    ) -> Vec<EpochStats> {
        assert_eq!(&inputs.shape()[1..], self.input_shape().as_slice(), "input shape mismatch");
        let _span = noodle_telemetry::span!(
            "cnn.fit",
            modality = self.modality_name(),
            samples = labels.len(),
        );
        fit_classifier(&mut self.net, inputs, labels, config, rng)
    }

    /// Softmax class probabilities `[n, 2]`.
    pub fn predict_proba(&mut self, inputs: &Tensor) -> Tensor {
        assert_eq!(&inputs.shape()[1..], self.input_shape().as_slice(), "input shape mismatch");
        self.net.predict_proba(inputs)
    }

    /// Softmax class probabilities `[n, 2]` through the allocation-free
    /// inference path: bit-identical to [`Self::predict_proba`] at every
    /// batch size, but takes `&self` and writes into `arena`'s reusable
    /// buffers instead of allocating fresh tensors.
    pub fn infer_proba<'a>(&self, inputs: &Tensor, arena: &'a mut InferArena) -> &'a Tensor {
        assert_eq!(&inputs.shape()[1..], self.input_shape().as_slice(), "input shape mismatch");
        self.net.infer_proba(inputs, arena)
    }

    /// Number of trainable parameters.
    pub fn param_count(&mut self) -> usize {
        self.net.param_count()
    }

    /// Builds the int8 post-training-quantized serving twin of this
    /// classifier, with activation scales calibrated on `calibration`
    /// (a batch in this modality's input shape).
    pub fn quantize(&self, calibration: &Tensor) -> QuantizedModel {
        assert_eq!(
            &calibration.shape()[1..],
            self.input_shape().as_slice(),
            "input shape mismatch"
        );
        QuantizedModel::from_calibrated(&self.net, calibration)
    }
}

fn build_1d<R: Rng + ?Sized>(width: usize, rng: &mut R) -> Sequential {
    let (c1, c2) = CONV_CHANNELS;
    let after_pool = width / 2 / 2;
    Sequential::new(vec![
        Conv1d::new(1, c1, KERNEL, 1, rng).into(),
        Activation::relu().into(),
        MaxPool1d::new(2).into(),
        Conv1d::new(c1, c2, KERNEL, 1, rng).into(),
        Activation::relu().into(),
        MaxPool1d::new(2).into(),
        Flatten::new().into(),
        Dropout::new(DROPOUT, 17).into(),
        Dense::new(c2 * after_pool, HEAD_WIDTH, rng).into(),
        Activation::relu().into(),
        Dense::new(HEAD_WIDTH, N_CLASSES, rng).into(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_flow_through_all_three() {
        let mut rng = StdRng::seed_from_u64(0);
        for kind in [ModalityKind::Graph, ModalityKind::Tabular, ModalityKind::EarlyFusion] {
            let mut clf = ModalityClassifier::new(kind, &mut rng);
            let mut shape = vec![4];
            shape.extend(clf.input_shape());
            let x = Tensor::rand_uniform(&shape, 0.0, 1.0, &mut rng);
            let p = clf.predict_proba(&x);
            assert_eq!(p.shape(), &[4, 2]);
            for r in 0..4 {
                let s: f32 = p.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-5, "{kind:?} row {r} sums to {s}");
            }
        }
    }

    #[test]
    fn learns_separable_tabular_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut clf = ModalityClassifier::new(ModalityKind::Tabular, &mut rng);
        let n = 40;
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let base = if label == 0 { -1.0 } else { 1.0 };
            let noise = Tensor::randn(&[TABULAR_DIM], 0.1, &mut rng);
            rows.push(noise.data().iter().map(|v| v + base).collect::<Vec<f32>>());
            labels.push(label);
        }
        let x = Tensor::stack_rows(&rows).unwrap().reshape(&[n, 1, TABULAR_DIM]).unwrap();
        let config = TrainConfig { epochs: 25, batch_size: 8, lr: 2e-3 };
        let trace = clf.fit(&x, &labels, &config, &mut rng);
        assert!(trace.last().unwrap().loss < trace.first().unwrap().loss);
        let preds = clf.predict_proba(&x).argmax_rows();
        let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        assert!(correct >= 36, "only {correct}/{n} correct");
    }

    #[test]
    fn identical_hyperparameters_across_modalities() {
        // The conv stacks share channel counts; parameter counts differ only
        // through input width, not architecture choices.
        let mut rng = StdRng::seed_from_u64(2);
        let mut tab = ModalityClassifier::new(ModalityKind::Tabular, &mut rng);
        let mut early = ModalityClassifier::new(ModalityKind::EarlyFusion, &mut rng);
        assert!(early.param_count() > tab.param_count());
        assert_eq!(tab.kind(), ModalityKind::Tabular);
    }

    #[test]
    fn infer_proba_matches_predict_proba_bitwise() {
        let mut rng = StdRng::seed_from_u64(4);
        for kind in [ModalityKind::Graph, ModalityKind::Tabular, ModalityKind::EarlyFusion] {
            let mut clf = ModalityClassifier::new(kind, &mut rng);
            let mut shape = vec![6];
            shape.extend(clf.input_shape());
            let x = Tensor::rand_uniform(&shape, 0.0, 1.0, &mut rng);
            let expected = clf.predict_proba(&x);
            let mut arena = InferArena::new();
            assert_eq!(clf.infer_proba(&x, &mut arena), &expected, "{kind:?} diverges");
        }
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn rejects_wrong_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut clf = ModalityClassifier::new(ModalityKind::Graph, &mut rng);
        let _ = clf.predict_proba(&Tensor::zeros(&[1, 1, TABULAR_DIM]));
    }
}
