//! Content-addressed cache of extracted modality features.
//!
//! Parsing a Verilog design and rasterizing its graph image dominates the
//! cost of screening a file, and the result depends only on the source
//! text and the extractor implementation. The cache therefore keys each
//! entry by an FNV-1a hash of [`EXTRACTOR_VERSION`] plus the raw source
//! bytes: re-screening a corpus after touching one file recomputes exactly
//! that file, and bumping the version constant invalidates every entry at
//! once when the extractors change.
//!
//! Entries live in a bounded in-memory LRU map; with a cache directory
//! attached (`noodle detect --cache-dir`) each entry is also persisted as
//! a small JSON file so warm starts survive across processes. Hits,
//! misses and evictions are counted both locally ([`CacheStats`]) and as
//! `cache.*` telemetry counters so they surface in the RunReport.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::dataset::{extract_modalities, GRAPH_DIM, TABULAR_DIM};
use crate::error::PipelineError;

/// Version stamp of the feature extractors baked into cache keys. Bump
/// whenever `noodle-graph`/`noodle-tabular` change what they compute so
/// stale entries (in memory or on disk) can never be served.
pub const EXTRACTOR_VERSION: u32 = 1;

/// Hit/miss/eviction counters accumulated over a [`FeatureCache`]'s life.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that fell through to extraction.
    pub misses: u64,
    /// In-memory entries displaced by the LRU bound.
    pub evictions: u64,
}

/// One cached feature pair as serialized to the on-disk store.
#[derive(Debug, Serialize, Deserialize)]
struct DiskEntry {
    extractor_version: u32,
    graph: Vec<f32>,
    tabular: Vec<f32>,
}

#[derive(Debug)]
struct Entry {
    graph: Vec<f32>,
    tabular: Vec<f32>,
    last_used: u64,
}

/// A content-addressed LRU cache of `(graph, tabular)` feature vectors
/// with an optional on-disk store.
///
/// # Examples
///
/// ```
/// use noodle_core::FeatureCache;
///
/// let src = "module m(input a, output y); assign y = !a; endmodule";
/// let mut cache = FeatureCache::new(64);
/// assert!(cache.lookup(src).is_none());
/// let (graph, tabular) = noodle_core::extract_modalities(src).unwrap();
/// cache.insert(src, graph, tabular);
/// assert!(cache.lookup(src).is_some());
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct FeatureCache {
    capacity: usize,
    map: HashMap<u64, Entry>,
    tick: u64,
    dir: Option<PathBuf>,
    stats: CacheStats,
}

impl FeatureCache {
    /// Creates an in-memory cache holding at most `capacity` entries
    /// (at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            map: HashMap::new(),
            tick: 0,
            dir: None,
            stats: CacheStats::default(),
        }
    }

    /// Creates a cache backed by an on-disk store under `dir` (created if
    /// missing). Disk I/O is best effort: unreadable or stale files are
    /// treated as misses and overwritten.
    pub fn with_dir(capacity: usize, dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut cache = Self::new(capacity);
        cache.dir = Some(dir);
        Ok(cache)
    }

    /// Number of entries currently held in memory.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the in-memory cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The accumulated hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Returns the cached feature pair for `source`, consulting memory
    /// first and then the on-disk store. Counts a hit or a miss.
    pub fn lookup(&mut self, source: &str) -> Option<(Vec<f32>, Vec<f32>)> {
        let key = feature_key(source);
        self.tick += 1;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.last_used = self.tick;
            self.stats.hits += 1;
            noodle_telemetry::counter_add("cache.hits", 1);
            return Some((entry.graph.clone(), entry.tabular.clone()));
        }
        if let Some(features) = self.dir.as_deref().and_then(|dir| read_disk_entry(dir, key)) {
            self.store(key, features.0.clone(), features.1.clone());
            self.stats.hits += 1;
            noodle_telemetry::counter_add("cache.hits", 1);
            return Some(features);
        }
        self.stats.misses += 1;
        noodle_telemetry::counter_add("cache.misses", 1);
        None
    }

    /// Inserts freshly extracted features for `source`, evicting the
    /// least-recently-used entry if the cache is full and mirroring the
    /// entry to the on-disk store when one is attached.
    ///
    /// # Panics
    ///
    /// Panics if the feature vectors do not have the extractor's
    /// dimensions ([`GRAPH_DIM`], [`TABULAR_DIM`]).
    pub fn insert(&mut self, source: &str, graph: Vec<f32>, tabular: Vec<f32>) {
        assert_eq!(graph.len(), GRAPH_DIM, "graph feature vector has the wrong length");
        assert_eq!(tabular.len(), TABULAR_DIM, "tabular feature vector has the wrong length");
        let key = feature_key(source);
        if let Some(dir) = self.dir.as_deref() {
            write_disk_entry(dir, key, &graph, &tabular);
        }
        self.tick += 1;
        self.store(key, graph, tabular);
    }

    /// Returns the features for `source`, extracting (and caching) them on
    /// a miss.
    ///
    /// # Errors
    ///
    /// Propagates any [`PipelineError`] from extraction on a miss.
    pub fn features_for(&mut self, source: &str) -> Result<(Vec<f32>, Vec<f32>), PipelineError> {
        if let Some(features) = self.lookup(source) {
            return Ok(features);
        }
        let (graph, tabular) = extract_modalities(source)?;
        self.insert(source, graph.clone(), tabular.clone());
        Ok((graph, tabular))
    }

    /// Places an entry in the in-memory map, enforcing the LRU bound.
    fn store(&mut self, key: u64, graph: Vec<f32>, tabular: Vec<f32>) {
        self.map.insert(key, Entry { graph, tabular, last_used: self.tick });
        while self.map.len() > self.capacity {
            if let Some(oldest) = self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k)
            {
                self.map.remove(&oldest);
                self.stats.evictions += 1;
                noodle_telemetry::counter_add("cache.evictions", 1);
            }
        }
    }
}

/// FNV-1a (64-bit) over the extractor version followed by the source
/// bytes. Stable across platforms and dependency-free.
fn feature_key(source: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for byte in EXTRACTOR_VERSION.to_le_bytes().into_iter().chain(source.bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.json"))
}

/// Best-effort read of a persisted entry; stale versions and malformed or
/// truncated files are treated as absent.
fn read_disk_entry(dir: &Path, key: u64) -> Option<(Vec<f32>, Vec<f32>)> {
    let text = std::fs::read_to_string(entry_path(dir, key)).ok()?;
    let entry: DiskEntry = serde_json::from_str(&text).ok()?;
    if entry.extractor_version != EXTRACTOR_VERSION
        || entry.graph.len() != GRAPH_DIM
        || entry.tabular.len() != TABULAR_DIM
    {
        return None;
    }
    Some((entry.graph, entry.tabular))
}

/// Best-effort write of a persisted entry; I/O failures leave the disk
/// store behind but never break detection.
fn write_disk_entry(dir: &Path, key: u64, graph: &[f32], tabular: &[f32]) {
    let entry = DiskEntry {
        extractor_version: EXTRACTOR_VERSION,
        graph: graph.to_vec(),
        tabular: tabular.to_vec(),
    };
    if let Ok(json) = serde_json::to_string(&entry) {
        let _ = std::fs::write(entry_path(dir, key), json);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_A: &str = "module a(input x, output y); assign y = !x; endmodule";
    const SRC_B: &str = "module b(input x, output y); assign y = x; endmodule";

    #[test]
    fn miss_then_hit_with_counters() {
        let mut cache = FeatureCache::new(8);
        assert!(cache.lookup(SRC_A).is_none());
        let (g, t) = extract_modalities(SRC_A).unwrap();
        cache.insert(SRC_A, g.clone(), t.clone());
        assert_eq!(cache.lookup(SRC_A), Some((g, t)));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn distinct_sources_do_not_collide() {
        let mut cache = FeatureCache::new(8);
        let (ga, ta) = extract_modalities(SRC_A).unwrap();
        let (gb, tb) = extract_modalities(SRC_B).unwrap();
        cache.insert(SRC_A, ga.clone(), ta.clone());
        cache.insert(SRC_B, gb.clone(), tb.clone());
        assert_eq!(cache.lookup(SRC_A), Some((ga, ta)));
        assert_eq!(cache.lookup(SRC_B), Some((gb, tb)));
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut cache = FeatureCache::new(2);
        let (g, t) = extract_modalities(SRC_A).unwrap();
        cache.insert("one", g.clone(), t.clone());
        cache.insert("two", g.clone(), t.clone());
        let _ = cache.lookup("one"); // "two" becomes the LRU entry
        cache.insert("three", g.clone(), t.clone());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup("one").is_some());
        assert!(cache.lookup("two").is_none(), "LRU entry must be evicted");
        assert!(cache.lookup("three").is_some());
    }

    #[test]
    fn features_for_extracts_once() {
        let mut cache = FeatureCache::new(8);
        let cold = cache.features_for(SRC_A).unwrap();
        let warm = cache.features_for(SRC_A).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn disk_store_round_trips_and_rejects_stale_versions() {
        let dir = std::env::temp_dir().join(format!("noodle_fc_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut cache = FeatureCache::with_dir(8, &dir).unwrap();
            let _ = cache.features_for(SRC_A).unwrap();
        }
        // A fresh process-equivalent cache warm-starts from disk.
        let mut warm = FeatureCache::with_dir(8, &dir).unwrap();
        assert!(warm.lookup(SRC_A).is_some(), "disk entry should satisfy the lookup");
        assert_eq!(warm.stats().hits, 1);

        // Corrupt the version stamp: the entry must be ignored.
        let key = feature_key(SRC_A);
        let path = entry_path(&dir, key);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"extractor_version\":1", "\"extractor_version\":99"))
            .unwrap();
        let mut stale = FeatureCache::with_dir(8, &dir).unwrap();
        assert!(stale.lookup(SRC_A).is_none(), "stale extractor version must miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_depends_on_source_and_version() {
        assert_ne!(feature_key(SRC_A), feature_key(SRC_B));
        assert_eq!(feature_key(SRC_A), feature_key(SRC_A));
    }
}
