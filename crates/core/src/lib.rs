//! # noodle-core
//!
//! The NOODLE pipeline — uncertainty-aware hardware Trojan detection using
//! multimodal deep learning (Vishwakarma & Rezaei, DATE 2024) — implemented
//! end to end in Rust:
//!
//! 1. RTL (Verilog) designs are converted into two modalities: a **graph
//!    image** (`noodle-graph`) and a **tabular** code-branching feature
//!    vector (`noodle-tabular`);
//! 2. the small, imbalanced corpus is **GAN-amplified** per class over the
//!    joint modality vector (`noodle-gan`);
//! 3. one **CNN per modality** (plus an early-fusion CNN) is trained with
//!    identical hyperparameters (`noodle-nn`);
//! 4. **Mondrian inductive conformal prediction** turns each CNN into a
//!    calibrated p-value source, and **late fusion** combines the
//!    per-modality p-values per class (`noodle-conformal`, Algorithm 1);
//! 5. early and late fusion compete on **Brier score** and the winner
//!    classifies new designs with calibrated uncertainty (Algorithm 2).
//!
//! ## Quickstart
//!
//! ```no_run
//! use noodle_bench_gen::{generate_corpus, CorpusConfig};
//! use noodle_core::{MultimodalDataset, NoodleConfig, NoodleDetector};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), noodle_core::PipelineError> {
//! let corpus = generate_corpus(&CorpusConfig::default());
//! let dataset = MultimodalDataset::from_benchmarks(&corpus)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let mut detector = NoodleDetector::fit(&dataset, &NoodleConfig::default(), &mut rng)?;
//! println!("winner: {:?}", detector.winner());
//! let verdict = detector.detect(&corpus[0].source)?;
//! println!("infected: {} (p = {:.3})", verdict.infected, verdict.probability_infected);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amplify;
mod classifier;
mod crossval;
mod dataset;
mod detector;
mod error;
mod feature_cache;
mod normalize;

pub use amplify::amplify_dataset;
pub use classifier::{ModalityClassifier, ModalityKind};
pub use crossval::{cross_validate, CrossValidation, FoldReport};
pub use dataset::{
    extract_modalities, MultimodalDataset, MultimodalSample, Split, GRAPH_DIM, TABULAR_DIM,
};
pub use detector::{
    DetectRequest, Detection, EvaluationReport, FusionStrategy, NoodleConfig, NoodleDetector,
    QuantizedNets,
};
pub use error::PipelineError;
pub use feature_cache::{CacheStats, FeatureCache, EXTRACTOR_VERSION};
pub use normalize::ZScore;
