//! Error type for the NOODLE pipeline.

use std::fmt;

use noodle_conformal::ConformalError;
use noodle_verilog::ParseError;

/// An error produced while building datasets or running the NOODLE
/// detection pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// The RTL source failed to parse.
    Parse(ParseError),
    /// The source parsed but contained no modules.
    EmptyDesign,
    /// The conformal calibration step failed.
    Conformal(ConformalError),
    /// The dataset is unusable for the requested operation.
    Dataset(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Parse(e) => write!(f, "failed to parse RTL: {e}"),
            PipelineError::EmptyDesign => write!(f, "design contains no modules"),
            PipelineError::Conformal(e) => write!(f, "{e}"),
            PipelineError::Dataset(msg) => write!(f, "dataset error: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Parse(e) => Some(e),
            PipelineError::Conformal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for PipelineError {
    fn from(e: ParseError) -> Self {
        PipelineError::Parse(e)
    }
}

impl From<ConformalError> for PipelineError {
    fn from(e: ConformalError) -> Self {
        PipelineError::Conformal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PipelineError::EmptyDesign.to_string().contains("no modules"));
        assert!(PipelineError::Dataset("too small".into()).to_string().contains("too small"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineError>();
    }
}
