//! Thread-count invariance of the full training path.
//!
//! The compute pool's determinism contract (chunk boundaries independent of
//! the thread count, index-ordered reductions) promises that the pipeline
//! is bit-identical at `NOODLE_THREADS=1` and `NOODLE_THREADS=4`. This test
//! holds it to that: train the graph-image and tabular classifiers on the
//! same seeded corpus at both thread counts and demand byte-identical
//! serialized weights, bit-identical loss traces, and identical Mondrian
//! conformal p-values.

use noodle_bench_gen::{generate_corpus, CorpusConfig};
use noodle_compute::set_thread_override;
use noodle_conformal::{nonconformity_from_proba, MondrianIcp};
use noodle_core::{ModalityClassifier, ModalityKind, MultimodalDataset, TABULAR_DIM};
use noodle_nn::{Tensor, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything a training run produces that downstream stages consume.
struct RunArtifacts {
    /// Full serde_json serialization of the trained classifier (weights).
    model_json: String,
    /// Per-epoch mean losses, as raw bits.
    loss_bits: Vec<u32>,
    /// Mondrian p-values for both classes on the test split.
    p_values: Vec<f64>,
}

fn modality_input(dataset: &MultimodalDataset, kind: ModalityKind, indices: &[usize]) -> Tensor {
    match kind {
        ModalityKind::Graph => dataset.graph_tensor(indices),
        _ => {
            let m = dataset.tabular_matrix(indices);
            let n = m.shape()[0];
            m.reshape(&[n, 1, TABULAR_DIM]).expect("tabular rows have a fixed width")
        }
    }
}

/// Generates the corpus, trains one modality classifier, calibrates a
/// Mondrian ICP and scores the test split — all at `threads` threads.
fn run_pipeline(kind: ModalityKind, threads: usize) -> RunArtifacts {
    set_thread_override(Some(threads));
    let corpus = generate_corpus(&CorpusConfig { trojan_free: 10, trojan_infected: 6, seed: 11 });
    let dataset = MultimodalDataset::from_benchmarks(&corpus).expect("corpus extracts cleanly");
    let split = dataset.split(0.5, 0.25, 7);

    let mut rng = StdRng::seed_from_u64(42);
    let mut clf = ModalityClassifier::new(kind, &mut rng);
    let x_train = modality_input(&dataset, kind, &split.train);
    let labels = dataset.labels(&split.train);
    let config = TrainConfig { epochs: 3, batch_size: 8, lr: 1e-3 };
    let trace = clf.fit(&x_train, &labels, &config, &mut rng);

    let x_cal = modality_input(&dataset, kind, &split.calibration);
    let cal_labels = dataset.labels(&split.calibration);
    let cal_proba = clf.predict_proba(&x_cal);
    let scores: Vec<(f32, usize)> = cal_labels
        .iter()
        .enumerate()
        .map(|(i, &y)| (nonconformity_from_proba(cal_proba.at(&[i, y])), y))
        .collect();
    let icp = MondrianIcp::fit(&scores, 2).expect("calibration split covers both classes");

    let x_test = modality_input(&dataset, kind, &split.test);
    let test_proba = clf.predict_proba(&x_test);
    let mut p_values = Vec::new();
    for i in 0..split.test.len() {
        for class in 0..2 {
            p_values.push(icp.p_value(class, nonconformity_from_proba(test_proba.at(&[i, class]))));
        }
    }
    set_thread_override(None);

    RunArtifacts {
        model_json: serde_json::to_string(&clf).expect("classifier serializes"),
        loss_bits: trace.iter().map(|e| e.loss.to_bits()).collect(),
        p_values,
    }
}

/// One test (not one per modality) because the thread override is global
/// and the harness runs `#[test]` functions concurrently.
#[test]
fn training_is_bitwise_identical_across_thread_counts() {
    for kind in [ModalityKind::Graph, ModalityKind::Tabular] {
        let serial = run_pipeline(kind, 1);
        let parallel = run_pipeline(kind, 4);
        assert_eq!(
            serial.loss_bits, parallel.loss_bits,
            "{kind:?}: loss trace diverged between 1 and 4 threads"
        );
        assert_eq!(
            serial.model_json, parallel.model_json,
            "{kind:?}: serialized weights diverged between 1 and 4 threads"
        );
        assert_eq!(
            serial.p_values, parallel.p_values,
            "{kind:?}: Mondrian p-values diverged between 1 and 4 threads"
        );
    }
}
