//! Profiling must be a pure observer.
//!
//! The profiler's contract (ISSUE: "must not perturb determinism") is that
//! enabling `--profile` only reads clocks and writes per-thread rings — it
//! never touches RNG state, chunk boundaries, or accumulation order. This
//! test trains the same seeded classifier three ways — profiling off,
//! profiling on at 1 thread, profiling on at 4 threads — and demands
//! byte-identical serialized weights from all three, then checks that the
//! profiled runs actually recorded kernel events (the observer observed).

use noodle_bench_gen::{generate_corpus, CorpusConfig};
use noodle_compute::set_thread_override;
use noodle_core::{ModalityClassifier, ModalityKind, MultimodalDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Trains one graph-image classifier on a tiny seeded corpus at `threads`
/// threads and returns its full serde_json serialization (the same bytes
/// `noodle train` writes to the model file).
fn fit_model_json(threads: usize) -> String {
    set_thread_override(Some(threads));
    let corpus = generate_corpus(&CorpusConfig { trojan_free: 8, trojan_infected: 5, seed: 23 });
    let dataset = MultimodalDataset::from_benchmarks(&corpus).expect("corpus extracts cleanly");
    let split = dataset.split(0.6, 0.2, 7);
    let mut rng = StdRng::seed_from_u64(42);
    let mut clf = ModalityClassifier::new(ModalityKind::Graph, &mut rng);
    let x = dataset.graph_tensor(&split.train);
    let labels = dataset.labels(&split.train);
    let config = noodle_nn::TrainConfig { epochs: 2, batch_size: 8, lr: 1e-3 };
    let _ = clf.fit(&x, &labels, &config, &mut rng);
    set_thread_override(None);
    serde_json::to_string(&clf).expect("classifier serializes")
}

/// One test function (not one per configuration) because both the thread
/// override and the profiling switch are process-global and the harness
/// runs `#[test]` functions concurrently.
#[test]
fn profiled_training_is_bitwise_identical_across_thread_counts() {
    let unprofiled = fit_model_json(1);

    noodle_profile::set_enabled(true);
    let serial = fit_model_json(1);
    let parallel = fit_model_json(4);
    noodle_profile::set_enabled(false);

    assert_eq!(
        unprofiled, serial,
        "enabling profiling changed the trained model's serialized bytes"
    );
    assert_eq!(serial, parallel, "profiled training diverged between 1 and 4 threads");

    // The runs above must have actually exercised the profiler: kernel
    // events (gemm/conv/dense) from more than zero threads.
    let profile = noodle_profile::drain();
    let kernel_events: usize = profile
        .threads
        .iter()
        .map(|t| t.events.iter().filter(|e| e.kind.is_kernel()).count())
        .sum();
    assert!(kernel_events > 0, "profiled training recorded no kernel events");
}
