//! Verdict-level feature-cache correctness: a warm cache (in-memory or
//! restored from the on-disk store) reproduces cold verdicts exactly, and
//! editing one source invalidates exactly that cache entry.

use noodle_bench_gen::{generate_corpus, CorpusConfig};
use noodle_core::{DetectRequest, FeatureCache, MultimodalDataset, NoodleConfig, NoodleDetector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fitted() -> NoodleDetector {
    let corpus = generate_corpus(&CorpusConfig { trojan_free: 14, trojan_infected: 7, seed: 11 });
    let dataset = MultimodalDataset::from_benchmarks(&corpus).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    NoodleDetector::fit(&dataset, &NoodleConfig::fast(), &mut rng).unwrap()
}

#[test]
fn warm_cache_reproduces_cold_verdicts_and_edits_invalidate_one_entry() {
    let mut det = fitted();
    let probe = generate_corpus(&CorpusConfig { trojan_free: 4, trojan_infected: 2, seed: 55 });
    let n = probe.len();
    let requests: Vec<DetectRequest<'_>> = probe
        .iter()
        .map(|b| DetectRequest { design: &b.name, source: &b.source, label: None, trace: None })
        .collect();

    let dir = std::env::temp_dir().join(format!("noodle_fc_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cache = FeatureCache::with_dir(64, &dir).unwrap();

    // Cold: every file misses and is extracted once.
    let cold = det.detect_batch(&requests, 4, Some(&mut cache)).unwrap();
    assert_eq!(cache.stats().misses, n as u64);
    assert_eq!(cache.stats().hits, 0);

    // Warm: every file hits; verdicts are identical.
    let warm = det.detect_batch(&requests, 4, Some(&mut cache)).unwrap();
    assert_eq!(cache.stats().misses, n as u64);
    assert_eq!(cache.stats().hits, n as u64);
    assert_eq!(warm, cold, "warm-cache verdicts diverge from cold");

    // A fresh cache over the same directory warms itself from disk.
    let mut disk_cache = FeatureCache::with_dir(64, &dir).unwrap();
    let from_disk = det.detect_batch(&requests, 4, Some(&mut disk_cache)).unwrap();
    assert_eq!(disk_cache.stats().hits, n as u64);
    assert_eq!(disk_cache.stats().misses, 0);
    assert_eq!(from_disk, cold, "disk-restored verdicts diverge from cold");

    // Editing one source invalidates exactly its entry: one miss, the rest
    // still hit, and the untouched files keep their verdicts.
    const EDITED: usize = 2;
    let sources: Vec<String> = probe
        .iter()
        .enumerate()
        .map(
            |(i, b)| {
                if i == EDITED {
                    format!("{}\n// revised\n", b.source)
                } else {
                    b.source.clone()
                }
            },
        )
        .collect();
    let edited_requests: Vec<DetectRequest<'_>> = probe
        .iter()
        .zip(&sources)
        .map(|(b, s)| DetectRequest { design: &b.name, source: s, label: None, trace: None })
        .collect();
    let before = cache.stats();
    let rerun = det.detect_batch(&edited_requests, 4, Some(&mut cache)).unwrap();
    let after = cache.stats();
    assert_eq!(after.misses - before.misses, 1, "exactly the edited file must miss");
    assert_eq!(after.hits - before.hits, (n - 1) as u64);
    for (i, (a, b)) in rerun.iter().zip(&cold).enumerate() {
        if i != EDITED {
            assert_eq!(a, b, "verdict for untouched file {i} changed");
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
