//! RTL Trojan templates and AST-level insertion.
//!
//! The templates follow the canonical RTL Trojan taxonomy used by the
//! TrustHub benchmarks: a stealthy *trigger* (rare input value, time bomb
//! counter, or input sequence detector) gating a *payload* (output
//! corruption, information leakage, or denial of service). Insertion
//! rewrites one of the circuit's payload hooks — `assign out = internal;`
//! becomes `assign out = trigger ? tampered : internal;` — and adds the
//! trigger logic, using innocuous signal names so that detection cannot
//! cheat on identifiers.

use noodle_verilog::{Expr, Item, LValue};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

use crate::build::*;
use crate::circuit::GeneratedCircuit;

/// How the Trojan wakes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TriggerKind {
    /// A comparator on a data input against a rare magic value.
    MagicValue,
    /// A free-running counter that fires at a rare count.
    TimeBomb,
    /// A two-step FSM that detects a cheat-code sequence on a data input.
    Sequence,
}

/// What the Trojan does once triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PayloadKind {
    /// XORs the hijacked output with a non-zero mask.
    Corrupt,
    /// XORs the output with a replicated bit of an internal secret,
    /// exfiltrating it one bit at a time.
    Leak,
    /// Forces the output to zero.
    DenialOfService,
}

/// A fully specified Trojan to insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrojanSpec {
    /// Trigger mechanism.
    pub trigger: TriggerKind,
    /// Payload behaviour.
    pub payload: PayloadKind,
}

impl TrojanSpec {
    /// Every trigger × payload combination, in a stable order.
    pub fn all() -> Vec<TrojanSpec> {
        let mut out = Vec::new();
        for trigger in [TriggerKind::MagicValue, TriggerKind::TimeBomb, TriggerKind::Sequence] {
            for payload in [PayloadKind::Corrupt, PayloadKind::Leak, PayloadKind::DenialOfService] {
                out.push(TrojanSpec { trigger, payload });
            }
        }
        out
    }
}

/// Description of an inserted Trojan, recorded in corpus metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrojanDescriptor {
    /// The trigger that was actually inserted (may differ from the request
    /// when the circuit lacks a clock or data inputs).
    pub trigger: TriggerKind,
    /// The payload that was inserted.
    pub payload: PayloadKind,
    /// The hijacked output port.
    pub hooked_output: String,
    /// The signal the trigger observes: a data input for
    /// [`TriggerKind::MagicValue`]/[`TriggerKind::Sequence`], the internal
    /// counter register for [`TriggerKind::TimeBomb`].
    pub trigger_source: String,
    /// The magic value(s) that fire the trigger (two for a sequence).
    pub trigger_values: Vec<u64>,
}

// Innocuous-looking names for the inserted logic, so classifiers cannot key
// on identifiers.
const TRIG_WIRE: &str = "cfg_match";
const CNT_REG: &str = "cal_cnt";
const SEQ_REG: &str = "scan_st";

/// Inserts a Trojan into `circuit` according to `spec`.
///
/// Falls back gracefully: a [`TriggerKind::TimeBomb`] needs a clock and
/// degrades to [`TriggerKind::MagicValue`] on combinational circuits;
/// [`TriggerKind::MagicValue`] and [`TriggerKind::Sequence`] need a data
/// input and degrade to [`TriggerKind::TimeBomb`]; a [`PayloadKind::Leak`]
/// without any secret degrades to [`PayloadKind::Corrupt`].
///
/// # Panics
///
/// Panics if the circuit has neither a clock nor a data input (no generated
/// family is like that), or if its hook list is empty.
pub fn insert_trojan<R: Rng + ?Sized>(
    circuit: &mut GeneratedCircuit,
    spec: TrojanSpec,
    rng: &mut R,
) -> TrojanDescriptor {
    assert!(!circuit.hooks.is_empty(), "circuit has no payload hooks");
    let has_clock = circuit.clock.is_some();
    let has_data = !circuit.data_inputs.is_empty();
    assert!(has_clock || has_data, "circuit has neither clock nor data inputs");

    let trigger = match spec.trigger {
        TriggerKind::TimeBomb if !has_clock => TriggerKind::MagicValue,
        TriggerKind::MagicValue | TriggerKind::Sequence if !has_data => TriggerKind::TimeBomb,
        // A sequence detector also needs a clock to advance.
        TriggerKind::Sequence if !has_clock => TriggerKind::MagicValue,
        t => t,
    };
    let payload = match spec.payload {
        PayloadKind::Leak if circuit.secrets.is_empty() => PayloadKind::Corrupt,
        p => p,
    };

    let hook_idx = rng.random_range(0..circuit.hooks.len());
    let hook = circuit.hooks[hook_idx].clone();

    // 1. Build the trigger logic.
    let (trigger_source, trigger_values): (String, Vec<u64>) = match trigger {
        TriggerKind::MagicValue => {
            let src = &circuit.data_inputs[rng.random_range(0..circuit.data_inputs.len())];
            let magic = rng.random_range(0..(1u128 << src.width.min(63)));
            circuit.module.items.push(wire(TRIG_WIRE, 1));
            circuit
                .module
                .items
                .push(assign(TRIG_WIRE, eq(id(&src.name), dec(src.width as u32, magic))));
            (src.name.clone(), vec![magic as u64])
        }
        TriggerKind::TimeBomb => {
            let clk = circuit.clock.clone().expect("time bomb requires a clock");
            let cw = 16u64;
            let magic = rng.random_range((1u128 << 12)..(1u128 << cw));
            circuit.module.items.push(reg(CNT_REG, cw));
            circuit.module.items.push(wire(TRIG_WIRE, 1));
            circuit
                .module
                .items
                .push(always_ff(&clk, nb(CNT_REG, add(id(CNT_REG), dec(cw as u32, 1)))));
            circuit.module.items.push(assign(TRIG_WIRE, eq(id(CNT_REG), dec(cw as u32, magic))));
            (CNT_REG.to_string(), vec![magic as u64])
        }
        TriggerKind::Sequence => {
            let clk = circuit.clock.clone().expect("sequence trigger requires a clock");
            let src = &circuit.data_inputs[rng.random_range(0..circuit.data_inputs.len())];
            let m1 = rng.random_range(0..(1u128 << src.width.min(63)));
            let mut m2 = rng.random_range(0..(1u128 << src.width.min(63)));
            if m2 == m1 {
                m2 = m1 ^ 1;
            }
            circuit.module.items.push(reg(SEQ_REG, 2));
            circuit.module.items.push(wire(TRIG_WIRE, 1));
            circuit.module.items.push(always_ff(
                &clk,
                case_stmt(
                    id(SEQ_REG),
                    vec![
                        (
                            dec(2, 0),
                            if_then(
                                eq(id(&src.name), dec(src.width as u32, m1)),
                                nb(SEQ_REG, dec(2, 1)),
                            ),
                        ),
                        (
                            dec(2, 1),
                            if_else(
                                eq(id(&src.name), dec(src.width as u32, m2)),
                                nb(SEQ_REG, dec(2, 2)),
                                if_then(
                                    lnot(eq(id(&src.name), dec(src.width as u32, m1))),
                                    nb(SEQ_REG, dec(2, 0)),
                                ),
                            ),
                        ),
                        (dec(2, 2), nb(SEQ_REG, dec(2, 2))),
                    ],
                    nb(SEQ_REG, dec(2, 0)),
                ),
            ));
            circuit.module.items.push(assign(TRIG_WIRE, eq(id(SEQ_REG), dec(2, 2))));
            (src.name.clone(), vec![m1 as u64, m2 as u64])
        }
    };

    // 2. Build the tampered value.
    let w = hook.width;
    let tampered = match payload {
        PayloadKind::Corrupt => {
            let m = if w == 1 { 1 } else { rng.random_range(1..(1u128 << w.min(63))) };
            bxor(id(&hook.internal), dec(w as u32, m))
        }
        PayloadKind::Leak => {
            let secret = &circuit.secrets[rng.random_range(0..circuit.secrets.len())];
            let leak_bit = bit(&secret.name, 0);
            if w == 1 {
                bxor(id(&hook.internal), leak_bit)
            } else {
                bxor(id(&hook.internal), Expr::Repeat { count: w as u32, expr: Box::new(leak_bit) })
            }
        }
        PayloadKind::DenialOfService => dec(w as u32, 0),
    };

    // 3. Rewrite the hook: `assign out = internal;` →
    //    `assign out = cfg_match ? tampered : internal;`
    let rewritten = circuit.module.items.iter_mut().any(|item| {
        if let Item::Assign { lhs: LValue::Ident(out), rhs } = item {
            if *out == hook.output && *rhs == id(&hook.internal) {
                *rhs = mux(id(TRIG_WIRE), tampered.clone(), id(&hook.internal));
                return true;
            }
        }
        false
    });
    assert!(rewritten, "payload hook {hook:?} not found in module items");

    TrojanDescriptor {
        trigger,
        payload,
        hooked_output: hook.output,
        trigger_source,
        trigger_values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitFamily;
    use crate::families::generate;
    use noodle_verilog::{parse, print_module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_spec_inserts_into_every_family() {
        let mut rng = StdRng::seed_from_u64(11);
        for family in CircuitFamily::ALL {
            for spec in TrojanSpec::all() {
                let mut c = generate(family, "victim", &mut rng);
                let before = print_module(&c.module);
                let desc = insert_trojan(&mut c, spec, &mut rng);
                let after = print_module(&c.module);
                assert_ne!(before, after, "{}: {spec:?} changed nothing", family.tag());
                assert!(
                    parse(&after).is_ok(),
                    "{}: {spec:?} produced unparseable Verilog:\n{after}",
                    family.tag()
                );
                assert!(after.contains(TRIG_WIRE));
                assert!(!desc.hooked_output.is_empty());
            }
        }
    }

    #[test]
    fn combinational_circuit_degrades_time_bomb() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = generate(CircuitFamily::Arbiter, "victim", &mut rng);
        let spec = TrojanSpec { trigger: TriggerKind::TimeBomb, payload: PayloadKind::Corrupt };
        let desc = insert_trojan(&mut c, spec, &mut rng);
        assert_eq!(desc.trigger, TriggerKind::MagicValue);
    }

    #[test]
    fn lfsr_degrades_magic_value_to_time_bomb() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = generate(CircuitFamily::Lfsr, "victim", &mut rng);
        let spec = TrojanSpec { trigger: TriggerKind::MagicValue, payload: PayloadKind::Leak };
        let desc = insert_trojan(&mut c, spec, &mut rng);
        assert_eq!(desc.trigger, TriggerKind::TimeBomb);
    }

    #[test]
    fn arbiter_leak_degrades_to_corrupt() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut c = generate(CircuitFamily::Arbiter, "victim", &mut rng);
        let spec = TrojanSpec { trigger: TriggerKind::MagicValue, payload: PayloadKind::Leak };
        let desc = insert_trojan(&mut c, spec, &mut rng);
        assert_eq!(desc.payload, PayloadKind::Corrupt);
    }

    #[test]
    fn dos_payload_muxes_to_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = generate(CircuitFamily::Timer, "victim", &mut rng);
        let spec =
            TrojanSpec { trigger: TriggerKind::TimeBomb, payload: PayloadKind::DenialOfService };
        let _ = insert_trojan(&mut c, spec, &mut rng);
        let text = print_module(&c.module);
        assert!(text.contains('?'), "expected a triggered mux:\n{text}");
    }
}
