//! Benign Trojan-lookalike decorations.
//!
//! Real IP cores are full of logic that *structurally* resembles Trojan
//! triggers: watchdog counters that compare against a terminal count,
//! address/command decoders that match magic constants, and status muxes.
//! Without such confounders a synthetic corpus is trivially separable and
//! the detection numbers collapse to zero — unlike the TrustHub corpus the
//! paper evaluates on. Decorating clean *and* infected designs with these
//! innocuous look-alikes restores honest class overlap: the discriminative
//! signal is the full trigger→payload chain, not the mere presence of a
//! comparator or counter.

use rand::{Rng, RngExt};

use crate::build::*;
use crate::circuit::GeneratedCircuit;

/// Kinds of benign decoration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decoration {
    /// Free-running watchdog counter with a terminal-count status output.
    Watchdog,
    /// Magic-constant decoder on a data input driving a status output.
    AddressDecoder,
    /// A diagnostics mux: a real input selects between an internal signal
    /// and its complement on a new debug output.
    DebugMux,
    /// A parity/status comparator on an internal secret or counter.
    ParityStatus,
    /// A two-step protocol command detector: a small FSM that watches a
    /// data input for a fixed command sequence and raises a status flag —
    /// structurally the benign twin of a sequence-triggered Trojan.
    CommandSequencer,
    /// The full Trojan-shaped chain — magic comparator (or terminal-count
    /// watchdog) selecting between an internal signal and a transform of it
    /// — but driving a brand-new diagnostics output instead of hijacking a
    /// functional one. Topologically the closest benign twin of a real
    /// trigger→payload pair.
    TriggerShapedDebug,
}

/// Adds exactly one trigger-shaped decoy (the benign twin of a Trojan's
/// trigger→payload chain) to a circuit. Used by the corpus generator so
/// clean designs carry the same number of payload-mux chains as infected
/// ones and only the chain's *wiring* differs.
pub fn add_trigger_shaped_decoy<R: Rng + ?Sized>(circuit: &mut GeneratedCircuit, rng: &mut R) {
    let expose = rng.random::<bool>();
    apply(circuit, Decoration::TriggerShapedDebug, 9000 + rng.random_range(0..999), expose, rng);
}

/// Adds `count` random benign decorations to a circuit. Decorations only
/// append new items and new *output* ports, so existing payload hooks stay
/// intact for Trojan insertion.
pub fn add_benign_decorations<R: Rng + ?Sized>(
    circuit: &mut GeneratedCircuit,
    count: usize,
    rng: &mut R,
) {
    for i in 0..count {
        let mut options = vec![Decoration::DebugMux, Decoration::ParityStatus];
        if circuit.clock.is_some() {
            options.push(Decoration::Watchdog);
        }
        if !circuit.data_inputs.is_empty() {
            options.push(Decoration::AddressDecoder);
        }
        if circuit.clock.is_some() || !circuit.data_inputs.is_empty() {
            // The full-chain lookalike is the most important confounder;
            // weight it so roughly half of all decorations are chains.
            options.push(Decoration::TriggerShapedDebug);
            options.push(Decoration::TriggerShapedDebug);
            options.push(Decoration::TriggerShapedDebug);
        }
        if circuit.clock.is_some() && !circuit.data_inputs.is_empty() {
            options.push(Decoration::CommandSequencer);
            options.push(Decoration::CommandSequencer);
        }
        let choice = options[rng.random_range(0..options.len())];
        // Roughly half of all decorations surface their status on a new
        // port; the rest stay internal (disabled debug / lint-dirty status
        // nets are everywhere in real RTL). This keeps port counts from
        // betraying how many decorations a design received.
        let expose = rng.random::<bool>();
        apply(circuit, choice, i, expose, rng);
    }
}

fn apply<R: Rng + ?Sized>(
    circuit: &mut GeneratedCircuit,
    decoration: Decoration,
    tag: usize,
    expose: bool,
    rng: &mut R,
) {
    match decoration {
        Decoration::Watchdog => {
            let clk = circuit.clock.clone().expect("watchdog requires a clock");
            let w = 16u64;
            let terminal = rng.random_range((1u128 << 10)..(1u128 << w));
            let cnt = format!("wd_cnt_{tag}");
            let ovf = format!("wd_ovf_{tag}");
            let hit = format!("wd_hit_{tag}");
            circuit.module.items.push(reg(&cnt, w));
            circuit.module.items.push(wire(&hit, 1));
            circuit.module.items.push(always_ff(
                &clk,
                if_else(
                    id(&hit),
                    nb(&cnt, dec(w as u32, 0)),
                    nb(&cnt, add(id(&cnt), dec(w as u32, 1))),
                ),
            ));
            circuit.module.items.push(assign(&hit, eq(id(&cnt), dec(w as u32, terminal))));
            if expose {
                circuit.module.items.push(assign(&ovf, id(&hit)));
                circuit.module.ports.push(output(&ovf, 1));
            }
        }
        Decoration::AddressDecoder => {
            let src = circuit.data_inputs[rng.random_range(0..circuit.data_inputs.len())].clone();
            let magic = rng.random_range(0..(1u128 << src.width.min(63)));
            let sel = format!("dec_sel_{tag}");
            let hit = format!("dec_hit_{tag}");
            circuit.module.items.push(wire(&hit, 1));
            circuit
                .module
                .items
                .push(assign(&hit, eq(id(&src.name), dec(src.width as u32, magic))));
            if expose {
                circuit.module.items.push(assign(&sel, id(&hit)));
                circuit.module.ports.push(output(&sel, 1));
            }
        }
        Decoration::DebugMux => {
            // Select between a hook's internal signal and its complement —
            // an innocuous diagnostics path that still looks like an output
            // mux to a feature extractor.
            let hook = circuit.hooks[rng.random_range(0..circuit.hooks.len())].clone();
            let sel_input = first_single_bit_input(circuit)
                .unwrap_or_else(|| circuit.module.ports[0].name.clone());
            let dbg = format!("dbg_out_{tag}");
            let dbg_w = format!("dbg_w_{tag}");
            circuit.module.items.push(wire(&dbg_w, hook.width));
            circuit.module.items.push(assign(
                &dbg_w,
                mux(id(&sel_input), bnot(id(&hook.internal)), id(&hook.internal)),
            ));
            if expose {
                circuit.module.items.push(assign(&dbg, id(&dbg_w)));
                circuit.module.ports.push(output(&dbg, hook.width));
            }
        }
        Decoration::CommandSequencer => {
            let clk = circuit.clock.clone().expect("sequencer requires a clock");
            let src = circuit.data_inputs[rng.random_range(0..circuit.data_inputs.len())].clone();
            let m1 = rng.random_range(0..(1u128 << src.width.min(63)));
            let mut m2 = rng.random_range(0..(1u128 << src.width.min(63)));
            if m2 == m1 {
                m2 = m1 ^ 1;
            }
            let st = format!("cmd_st_{tag}");
            let hit = format!("cmd_hit_{tag}");
            circuit.module.items.push(reg(&st, 2));
            circuit.module.items.push(wire(&hit, 1));
            circuit.module.items.push(always_ff(
                &clk,
                case_stmt(
                    id(&st),
                    vec![
                        (
                            dec(2, 0),
                            if_then(
                                eq(id(&src.name), dec(src.width as u32, m1)),
                                nb(&st, dec(2, 1)),
                            ),
                        ),
                        (
                            dec(2, 1),
                            if_else(
                                eq(id(&src.name), dec(src.width as u32, m2)),
                                nb(&st, dec(2, 2)),
                                if_then(
                                    lnot(eq(id(&src.name), dec(src.width as u32, m1))),
                                    nb(&st, dec(2, 0)),
                                ),
                            ),
                        ),
                        // Unlike a Trojan trigger the benign sequencer
                        // acknowledges and re-arms instead of latching.
                        (dec(2, 2), nb(&st, dec(2, 0))),
                    ],
                    nb(&st, dec(2, 0)),
                ),
            ));
            circuit.module.items.push(assign(&hit, eq(id(&st), dec(2, 2))));
            if expose {
                let ack = format!("cmd_ack_{tag}");
                circuit.module.items.push(assign(&ack, id(&hit)));
                circuit.module.ports.push(output(&ack, 1));
            }
        }
        Decoration::TriggerShapedDebug => {
            let cmp = format!("tsd_cmp_{tag}");
            circuit.module.items.push(wire(&cmp, 1));
            if !circuit.data_inputs.is_empty() && (circuit.clock.is_none() || rng.random::<bool>())
            {
                let src =
                    circuit.data_inputs[rng.random_range(0..circuit.data_inputs.len())].clone();
                let magic = rng.random_range(0..(1u128 << src.width.min(63)));
                circuit
                    .module
                    .items
                    .push(assign(&cmp, eq(id(&src.name), dec(src.width as u32, magic))));
            } else {
                let clk = circuit.clock.clone().expect("checked above");
                let w = 16u64;
                let terminal = rng.random_range((1u128 << 12)..(1u128 << w));
                let cnt = format!("tsd_cnt_{tag}");
                circuit.module.items.push(reg(&cnt, w));
                circuit
                    .module
                    .items
                    .push(always_ff(&clk, nb(&cnt, add(id(&cnt), dec(w as u32, 1)))));
                circuit.module.items.push(assign(&cmp, eq(id(&cnt), dec(w as u32, terminal))));
            }
            let hook = circuit.hooks[rng.random_range(0..circuit.hooks.len())].clone();
            let dbg = format!("tsd_out_{tag}");
            let flip = if hook.width == 1 {
                bxor(id(&hook.internal), bin(1, 1))
            } else {
                bxor(
                    id(&hook.internal),
                    dec(hook.width as u32, rng.random_range(1..(1u128 << hook.width.min(63)))),
                )
            };
            let dbg_w = format!("tsd_w_{tag}");
            circuit.module.items.push(wire(&dbg_w, hook.width));
            circuit.module.items.push(assign(&dbg_w, mux(id(&cmp), flip, id(&hook.internal))));
            if expose {
                circuit.module.items.push(assign(&dbg, id(&dbg_w)));
                circuit.module.ports.push(output(&dbg, hook.width));
            }
        }
        Decoration::ParityStatus => {
            // Reduction-XOR parity of an internal signal, compared against a
            // fixed bit: comparator + XOR mass without any trigger role.
            let source = circuit
                .secrets
                .first()
                .map(|s| s.name.clone())
                .or_else(|| circuit.hooks.first().map(|h| h.internal.clone()))
                .unwrap_or_else(|| circuit.module.ports[0].name.clone());
            let par = format!("par_ok_{tag}");
            let parw = format!("par_w_{tag}");
            circuit.module.items.push(wire(&parw, 1));
            if expose {
                circuit.module.items.push(assign(&par, id(&parw)));
                circuit.module.ports.push(output(&par, 1));
            }
            let expect = rng.random_range(0..2u128);
            circuit.module.items.push(assign(
                &parw,
                eq(
                    noodle_verilog::Expr::unary(noodle_verilog::UnaryOp::RedXor, id(&source)),
                    bin(1, expect),
                ),
            ));
        }
    }
}

fn first_single_bit_input(circuit: &GeneratedCircuit) -> Option<String> {
    circuit
        .module
        .ports
        .iter()
        .find(|p| {
            p.direction == noodle_verilog::PortDirection::Input
                && p.range.is_none()
                && Some(&p.name) != circuit.clock.as_ref()
        })
        .map(|p| p.name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitFamily;
    use crate::families::generate;
    use noodle_verilog::{parse, print_module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn decorated_circuits_parse_for_every_family() {
        let mut rng = StdRng::seed_from_u64(1);
        for family in CircuitFamily::ALL {
            for n in 0..3 {
                let mut c = generate(family, "deco", &mut rng);
                add_benign_decorations(&mut c, n, &mut rng);
                let text = print_module(&c.module);
                assert!(parse(&text).is_ok(), "{}: n={n}\n{text}", family.tag());
            }
        }
    }

    #[test]
    fn decorations_preserve_hooks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = generate(CircuitFamily::Alu, "deco", &mut rng);
        let hooks_before = c.hooks.clone();
        add_benign_decorations(&mut c, 2, &mut rng);
        assert_eq!(c.hooks, hooks_before);
        // The hook assigns are still plain `assign out = internal;`.
        for hook in &c.hooks {
            let found = c.module.items.iter().any(|item| {
                matches!(
                    item,
                    noodle_verilog::Item::Assign {
                        lhs: noodle_verilog::LValue::Ident(o),
                        rhs: noodle_verilog::Expr::Ident(i)
                    } if *o == hook.output && *i == hook.internal
                )
            });
            assert!(found, "hook {hook:?} was disturbed");
        }
    }

    #[test]
    fn decorations_add_trigger_like_features_to_clean_designs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = generate(CircuitFamily::GrayCounter, "deco", &mut rng);
        let before = print_module(&c.module);
        add_benign_decorations(&mut c, 2, &mut rng);
        let after = print_module(&c.module);
        assert_ne!(before, after);
        assert!(c.module.ports.len() >= 5, "decorations add status outputs");
    }

    #[test]
    fn decorated_trojan_insertion_still_works() {
        use crate::trojan::{insert_trojan, TrojanSpec};
        let mut rng = StdRng::seed_from_u64(4);
        for spec in TrojanSpec::all() {
            let mut c = generate(CircuitFamily::Timer, "deco", &mut rng);
            add_benign_decorations(&mut c, 2, &mut rng);
            insert_trojan(&mut c, spec, &mut rng);
            let text = print_module(&c.module);
            assert!(parse(&text).is_ok(), "{spec:?}\n{text}");
        }
    }
}
