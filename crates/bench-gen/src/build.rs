//! Terse AST-construction helpers used by the circuit family generators.
//!
//! These are thin wrappers around `noodle-verilog` AST constructors so the
//! generators read close to the Verilog they produce.

use noodle_verilog::{
    BinaryOp, Connection, Edge, EventControl, EventExpr, Expr, Item, LValue, Literal, NetType,
    Port, PortDirection, Range, Stmt, UnaryOp,
};

/// An identifier expression.
pub fn id(name: &str) -> Expr {
    Expr::ident(name)
}

/// An unsized decimal literal.
pub fn num(value: u128) -> Expr {
    Expr::Literal(Literal::dec(value))
}

/// A sized hex literal `width'h value`.
pub fn hex(width: u32, value: u128) -> Expr {
    Expr::Literal(Literal::hex(width, value))
}

/// A sized binary literal `width'b value`.
pub fn bin(width: u32, value: u128) -> Expr {
    Expr::Literal(Literal::bin(width, value))
}

/// A sized decimal literal `width'd value`.
pub fn dec(width: u32, value: u128) -> Expr {
    Expr::Literal(Literal {
        width: Some(width),
        value,
        base: noodle_verilog::token::NumberBase::Decimal,
    })
}

/// Binary operation helper.
pub fn bin_op(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::binary(op, lhs, rhs)
}

/// `lhs == rhs`.
pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
    bin_op(BinaryOp::Eq, lhs, rhs)
}

/// `lhs + rhs`.
pub fn add(lhs: Expr, rhs: Expr) -> Expr {
    bin_op(BinaryOp::Add, lhs, rhs)
}

/// `lhs - rhs`.
pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
    bin_op(BinaryOp::Sub, lhs, rhs)
}

/// `lhs & rhs`.
pub fn band(lhs: Expr, rhs: Expr) -> Expr {
    bin_op(BinaryOp::BitAnd, lhs, rhs)
}

/// `lhs | rhs`.
pub fn bor(lhs: Expr, rhs: Expr) -> Expr {
    bin_op(BinaryOp::BitOr, lhs, rhs)
}

/// `lhs ^ rhs`.
pub fn bxor(lhs: Expr, rhs: Expr) -> Expr {
    bin_op(BinaryOp::BitXor, lhs, rhs)
}

/// `lhs && rhs`.
pub fn land(lhs: Expr, rhs: Expr) -> Expr {
    bin_op(BinaryOp::LogicAnd, lhs, rhs)
}

/// `~expr`.
pub fn bnot(expr: Expr) -> Expr {
    Expr::unary(UnaryOp::BitNot, expr)
}

/// `!expr`.
pub fn lnot(expr: Expr) -> Expr {
    Expr::unary(UnaryOp::Not, expr)
}

/// `cond ? a : b`.
pub fn mux(cond: Expr, a: Expr, b: Expr) -> Expr {
    Expr::ternary(cond, a, b)
}

/// A bit select `name[index]`.
pub fn bit(name: &str, index: u128) -> Expr {
    Expr::Bit { name: name.to_string(), index: Box::new(num(index)) }
}

/// A part select `name[msb:lsb]`.
pub fn part(name: &str, msb: i64, lsb: i64) -> Expr {
    Expr::Part { name: name.to_string(), msb, lsb }
}

/// An input port, vectored when `width > 1`.
pub fn input(name: &str, width: u64) -> Port {
    port(PortDirection::Input, name, width, false)
}

/// An output port, vectored when `width > 1`.
pub fn output(name: &str, width: u64) -> Port {
    port(PortDirection::Output, name, width, false)
}

/// An `output reg` port.
pub fn output_reg(name: &str, width: u64) -> Port {
    port(PortDirection::Output, name, width, true)
}

fn port(direction: PortDirection, name: &str, width: u64, is_reg: bool) -> Port {
    Port {
        direction,
        name: name.to_string(),
        range: if width > 1 { Some(Range::new(width as i64 - 1, 0)) } else { None },
        is_reg,
    }
}

/// A `wire` declaration.
pub fn wire(name: &str, width: u64) -> Item {
    decl(NetType::Wire, name, width)
}

/// A `reg` declaration.
pub fn reg(name: &str, width: u64) -> Item {
    decl(NetType::Reg, name, width)
}

fn decl(net: NetType, name: &str, width: u64) -> Item {
    Item::Decl {
        net,
        range: if width > 1 { Some(Range::new(width as i64 - 1, 0)) } else { None },
        names: vec![name.to_string()],
    }
}

/// `assign name = rhs;`.
pub fn assign(name: &str, rhs: Expr) -> Item {
    Item::Assign { lhs: LValue::Ident(name.to_string()), rhs }
}

/// `always @(posedge clk) body`.
pub fn always_ff(clk: &str, body: Stmt) -> Item {
    Item::Always {
        event: EventControl::Events(vec![EventExpr { edge: Some(Edge::Pos), signal: clk.into() }]),
        body,
    }
}

/// `always @(posedge clk or posedge rst) body`.
pub fn always_ff_arst(clk: &str, rst: &str, body: Stmt) -> Item {
    Item::Always {
        event: EventControl::Events(vec![
            EventExpr { edge: Some(Edge::Pos), signal: clk.into() },
            EventExpr { edge: Some(Edge::Pos), signal: rst.into() },
        ]),
        body,
    }
}

/// `always @* body`.
pub fn always_comb(body: Stmt) -> Item {
    Item::Always { event: EventControl::Star, body }
}

/// `begin ... end`.
pub fn block(stmts: Vec<Stmt>) -> Stmt {
    Stmt::Block { label: None, stmts }
}

/// Nonblocking assignment `name <= rhs;`.
pub fn nb(name: &str, rhs: Expr) -> Stmt {
    Stmt::Nonblocking { lhs: LValue::Ident(name.to_string()), rhs }
}

/// Blocking assignment `name = rhs;`.
pub fn blk(name: &str, rhs: Expr) -> Stmt {
    Stmt::Blocking { lhs: LValue::Ident(name.to_string()), rhs }
}

/// `if (cond) then` without else.
pub fn if_then(cond: Expr, then_branch: Stmt) -> Stmt {
    Stmt::If { cond, then_branch: Box::new(then_branch), else_branch: None }
}

/// `if (cond) then else els`.
pub fn if_else(cond: Expr, then_branch: Stmt, els: Stmt) -> Stmt {
    Stmt::If { cond, then_branch: Box::new(then_branch), else_branch: Some(Box::new(els)) }
}

/// A `case` statement from `(label, body)` pairs plus a default.
pub fn case_stmt(subject: Expr, arms: Vec<(Expr, Stmt)>, default: Stmt) -> Stmt {
    Stmt::Case {
        kind: noodle_verilog::CaseKind::Case,
        subject,
        arms: arms
            .into_iter()
            .map(|(label, body)| noodle_verilog::CaseArm { labels: vec![label], body })
            .collect(),
        default: Some(Box::new(default)),
    }
}

/// A named instance with named connections.
pub fn instance(module: &str, name: &str, conns: Vec<(&str, Expr)>) -> Item {
    Item::Instance {
        module: module.to_string(),
        name: name.to_string(),
        connections: conns
            .into_iter()
            .map(|(p, e)| Connection { port: Some(p.to_string()), expr: Some(e) })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noodle_verilog::{parse, print_module, Module};

    #[test]
    fn built_module_parses() {
        let module = Module {
            name: "t".into(),
            ports: vec![input("clk", 1), input("d", 8), output_reg("q", 8)],
            items: vec![
                wire("next", 8),
                assign("next", add(id("d"), dec(8, 1))),
                always_ff("clk", nb("q", id("next"))),
            ],
        };
        let text = print_module(&module);
        let file = parse(&text).unwrap();
        assert_eq!(file.modules[0].name, "t");
        assert_eq!(file.modules[0].items.len(), 3);
    }

    #[test]
    fn case_builder_parses() {
        let module = Module {
            name: "c".into(),
            ports: vec![input("s", 2), output_reg("y", 1)],
            items: vec![always_comb(case_stmt(
                id("s"),
                vec![(dec(2, 0), blk("y", bin(1, 0))), (dec(2, 1), blk("y", bin(1, 1)))],
                blk("y", bin(1, 0)),
            ))],
        };
        let text = print_module(&module);
        assert!(parse(&text).is_ok(), "unparseable:\n{text}");
    }
}
