//! # noodle-bench-gen
//!
//! A synthetic TrustHub-like benchmark corpus generator: parameterized,
//! randomized Verilog IP cores (UART, ALU, FIFO, FSMs, a toy cipher round,
//! …) plus AST-level insertion of RTL Trojans following the canonical
//! trigger × payload taxonomy (magic-value / time-bomb / sequence triggers;
//! corruption / leakage / denial-of-service payloads).
//!
//! This crate substitutes for the gated TrustHub RTL dataset the NOODLE
//! paper uses (see `DESIGN.md`): the detection pipeline consumes AST-derived
//! features, so a structurally realistic synthetic corpus with the same
//! small-and-imbalanced regime exercises the identical code path.
//!
//! ## Quickstart
//!
//! ```
//! use noodle_bench_gen::{generate_corpus, CorpusConfig};
//!
//! let corpus = generate_corpus(&CorpusConfig::default());
//! assert_eq!(corpus.len(), 40);
//! // Every design is real, parseable Verilog.
//! for bench in &corpus {
//!     noodle_verilog::parse(&bench.source).expect("corpus is valid Verilog");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod build;
mod circuit;
mod compose;
mod corpus;
mod decorate;
pub mod families;
mod style;
mod trojan;

pub use circuit::{CircuitFamily, GeneratedCircuit, PayloadHook, SignalRef};
pub use compose::compose;
pub use corpus::{corpus_stats, generate_corpus, Benchmark, CorpusConfig, CorpusStats, Label};
pub use decorate::{add_benign_decorations, add_trigger_shaped_decoy};
pub use style::apply_style_variations;
pub use trojan::{insert_trojan, PayloadKind, TriggerKind, TrojanDescriptor, TrojanSpec};
