//! Metadata describing a generated circuit and where a Trojan could attach.

use noodle_verilog::Module;
use serde::{Deserialize, Serialize};

/// A named signal with its bit width.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalRef {
    /// Signal name.
    pub name: String,
    /// Width in bits.
    pub width: u64,
}

impl SignalRef {
    /// Creates a signal reference.
    pub fn new(name: impl Into<String>, width: u64) -> Self {
        Self { name: name.into(), width }
    }
}

/// A point where a Trojan payload can hijack an output: the circuit drives
/// `output` with the plain continuous assignment `assign output = internal;`
/// which an inserted Trojan rewrites into a triggered multiplexer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PayloadHook {
    /// The hijackable output port.
    pub output: String,
    /// The benign internal driver signal.
    pub internal: String,
    /// Width of the output in bits.
    pub width: u64,
}

/// A generated benign circuit plus the metadata Trojan insertion needs.
#[derive(Debug, Clone)]
pub struct GeneratedCircuit {
    /// The circuit itself.
    pub module: Module,
    /// Clock signal name, if the circuit is sequential.
    pub clock: Option<String>,
    /// Output hooks a Trojan payload may hijack (never empty).
    pub hooks: Vec<PayloadHook>,
    /// Multi-bit input buses usable as Trojan trigger sources.
    pub data_inputs: Vec<SignalRef>,
    /// Internal state a leakage Trojan may exfiltrate.
    pub secrets: Vec<SignalRef>,
}

/// The circuit families produced by the generator, loosely mirroring the
/// kinds of IP cores in the TrustHub RTL benchmark set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CircuitFamily {
    UartTx,
    Alu,
    Timer,
    FifoCtrl,
    SpiShift,
    MooreFsm,
    CryptoRound,
    Pwm,
    Lfsr,
    GrayCounter,
    Arbiter,
    Debouncer,
    CrcGen,
    RoundRobin,
}

impl CircuitFamily {
    /// All families, in a stable order.
    pub const ALL: [CircuitFamily; 14] = [
        CircuitFamily::UartTx,
        CircuitFamily::Alu,
        CircuitFamily::Timer,
        CircuitFamily::FifoCtrl,
        CircuitFamily::SpiShift,
        CircuitFamily::MooreFsm,
        CircuitFamily::CryptoRound,
        CircuitFamily::Pwm,
        CircuitFamily::Lfsr,
        CircuitFamily::GrayCounter,
        CircuitFamily::Arbiter,
        CircuitFamily::Debouncer,
        CircuitFamily::CrcGen,
        CircuitFamily::RoundRobin,
    ];

    /// A short lowercase name used in generated module names.
    pub fn tag(self) -> &'static str {
        match self {
            CircuitFamily::UartTx => "uart_tx",
            CircuitFamily::Alu => "alu",
            CircuitFamily::Timer => "timer",
            CircuitFamily::FifoCtrl => "fifo_ctrl",
            CircuitFamily::SpiShift => "spi_shift",
            CircuitFamily::MooreFsm => "moore_fsm",
            CircuitFamily::CryptoRound => "crypto_round",
            CircuitFamily::Pwm => "pwm",
            CircuitFamily::Lfsr => "lfsr",
            CircuitFamily::GrayCounter => "gray_counter",
            CircuitFamily::Arbiter => "arbiter",
            CircuitFamily::Debouncer => "debouncer",
            CircuitFamily::CrcGen => "crc_gen",
            CircuitFamily::RoundRobin => "round_robin",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_tags_are_unique() {
        let mut tags: Vec<&str> = CircuitFamily::ALL.iter().map(|f| f.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), CircuitFamily::ALL.len());
    }
}
