//! Assembly of a TrustHub-like benchmark corpus.

use noodle_verilog::print_module;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::circuit::CircuitFamily;
use crate::compose::compose;
use crate::decorate::{add_benign_decorations, add_trigger_shaped_decoy};
use crate::families::generate;
use crate::style::apply_style_variations;
use crate::trojan::{insert_trojan, PayloadKind, TriggerKind, TrojanDescriptor, TrojanSpec};

/// The classification label of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// No Trojan inserted.
    TrojanFree,
    /// A Trojan was inserted.
    TrojanInfected,
}

impl Label {
    /// The class index used by the classifiers (TF = 0, TI = 1).
    pub fn index(self) -> usize {
        match self {
            Label::TrojanFree => 0,
            Label::TrojanInfected => 1,
        }
    }
}

/// One benchmark design: Verilog source plus ground-truth metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Benchmark {
    /// Unique design name (also the module name).
    pub name: String,
    /// The Verilog source text.
    pub source: String,
    /// Ground-truth label.
    pub label: Label,
    /// Which circuit family the benign core comes from.
    pub family: CircuitFamily,
    /// The inserted Trojan, if any.
    pub trojan: Option<TrojanDescriptor>,
}

/// Configuration for [`generate_corpus`].
///
/// The defaults mirror the data regime of the TrustHub RTL benchmarks the
/// paper trains on: a small corpus with Trojan-infected designs heavily
/// outnumbered by clean ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of Trojan-free designs.
    pub trojan_free: usize,
    /// Number of Trojan-infected designs.
    pub trojan_infected: usize,
    /// RNG seed; the corpus is a pure function of the configuration.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self { trojan_free: 28, trojan_infected: 12, seed: 0x0D00D1E }
    }
}

/// Generates a deterministic corpus of benign and Trojan-infected designs.
///
/// Families rotate round-robin so every corpus covers the full design mix;
/// Trojan specs rotate through every trigger × payload combination.
///
/// # Examples
///
/// ```
/// use noodle_bench_gen::{generate_corpus, CorpusConfig, Label};
///
/// let corpus = generate_corpus(&CorpusConfig { trojan_free: 6, trojan_infected: 3, seed: 1 });
/// assert_eq!(corpus.len(), 9);
/// assert_eq!(corpus.iter().filter(|b| b.label == Label::TrojanInfected).count(), 3);
/// ```
pub fn generate_corpus(config: &CorpusConfig) -> Vec<Benchmark> {
    let _span = noodle_telemetry::span!(
        "bench_gen.generate_corpus",
        trojan_free = config.trojan_free,
        trojan_infected = config.trojan_infected,
        seed = config.seed,
    );
    noodle_telemetry::counter_add(
        "bench_gen.designs",
        (config.trojan_free + config.trojan_infected) as u64,
    );
    // Two phases: circuit construction consumes the single seeded RNG
    // stream and must stay sequential (the corpus is a pure function of
    // the seed), while pretty-printing each finished module is independent
    // and fans out on the compute pool.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut built = Vec::with_capacity(config.trojan_free + config.trojan_infected);
    let specs = TrojanSpec::all();
    for i in 0..config.trojan_free {
        let family = CircuitFamily::ALL[i % CircuitFamily::ALL.len()];
        let name = format!("{}_tf_{i:03}", family.tag());
        let mut circuit = composite_design(family, &name, &mut rng);
        // Most clean designs carry a trigger-shaped decoy chain (the benign
        // twin of a Trojan) plus 1-3 random decorations, so every payload-
        // mux / comparator / counter pattern also occurs benignly. The
        // decoy rate is deliberately below 1.0: with perfect chain parity
        // the real-data task collapses to chance, while real corpora retain
        // a weak but genuine signal.
        if rng.random::<f64>() < 0.6 {
            add_trigger_shaped_decoy(&mut circuit, &mut rng);
        }
        add_benign_decorations(&mut circuit, rng.random_range(1..=3), &mut rng);
        apply_style_variations(&mut circuit.module, &mut rng);
        built.push((name, circuit, Label::TrojanFree, family, None));
    }
    for i in 0..config.trojan_infected {
        // Offset the family rotation so infected designs are not a subset of
        // the families used for the clean ones when counts are small.
        let family = CircuitFamily::ALL[(i * 5 + 2) % CircuitFamily::ALL.len()];
        let name = format!("{}_ti_{i:03}", family.tag());
        let mut circuit = composite_design(family, &name, &mut rng);
        // Infected designs carry the same decoration distribution plus the
        // Trojan, whose chain hijacks an existing output instead of adding
        // a status port — mirroring the subtlety of real TrustHub Trojans.
        add_benign_decorations(&mut circuit, rng.random_range(1..=3), &mut rng);
        let spec = specs[i % specs.len()];
        let descriptor = insert_trojan(&mut circuit, spec, &mut rng);
        apply_style_variations(&mut circuit.module, &mut rng);
        built.push((name, circuit, Label::TrojanInfected, family, Some(descriptor)));
    }
    noodle_compute::par_map_collect(built.len(), 1, |i| {
        let (name, circuit, label, family, trojan) = &built[i];
        Benchmark {
            name: name.clone(),
            source: print_module(&circuit.module),
            label: *label,
            family: *family,
            trojan: trojan.clone(),
        }
    })
}

/// Builds one IP-scale design: the lead family plus 1–3 further random
/// cores flattened into a single module (TrustHub benchmarks are whole IPs,
/// not 50-line leaf cells — composition dilutes the Trojan footprint to a
/// realistic fraction of the design).
fn composite_design(lead: CircuitFamily, name: &str, rng: &mut StdRng) -> crate::GeneratedCircuit {
    let extra = rng.random_range(1..=3usize);
    let mut cores = vec![generate(lead, "lead", rng)];
    for _ in 0..extra {
        let family = CircuitFamily::ALL[rng.random_range(0..CircuitFamily::ALL.len())];
        cores.push(generate(family, "core", rng));
    }
    compose(name, cores)
}

/// Summary statistics of a corpus, mostly for logging and documentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Total number of designs.
    pub total: usize,
    /// Number of Trojan-free designs.
    pub trojan_free: usize,
    /// Number of Trojan-infected designs.
    pub trojan_infected: usize,
    /// Mean source length in lines.
    pub mean_lines: f64,
    /// Number of distinct (trigger, payload) combinations present.
    pub distinct_trojans: usize,
}

/// Computes summary statistics for a corpus.
pub fn corpus_stats(corpus: &[Benchmark]) -> CorpusStats {
    let trojan_free = corpus.iter().filter(|b| b.label == Label::TrojanFree).count();
    let trojan_infected = corpus.len() - trojan_free;
    let mean_lines = if corpus.is_empty() {
        0.0
    } else {
        corpus.iter().map(|b| b.source.lines().count()).sum::<usize>() as f64 / corpus.len() as f64
    };
    let mut kinds: Vec<(TriggerKind, PayloadKind)> =
        corpus.iter().filter_map(|b| b.trojan.as_ref().map(|t| (t.trigger, t.payload))).collect();
    kinds.sort_by_key(|k| format!("{k:?}"));
    kinds.dedup();
    CorpusStats {
        total: corpus.len(),
        trojan_free,
        trojan_infected,
        mean_lines,
        distinct_trojans: kinds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noodle_verilog::parse;

    #[test]
    fn default_corpus_is_imbalanced_and_parseable() {
        let corpus = generate_corpus(&CorpusConfig::default());
        let stats = corpus_stats(&corpus);
        assert_eq!(stats.total, 40);
        assert!(stats.trojan_free > 2 * stats.trojan_infected);
        for b in &corpus {
            let file = parse(&b.source).unwrap_or_else(|e| panic!("{}: {e}\n{}", b.name, b.source));
            assert_eq!(file.modules[0].name, b.name);
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let config = CorpusConfig { trojan_free: 5, trojan_infected: 5, seed: 7 };
        let a = generate_corpus(&config);
        let b = generate_corpus(&config);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_corpus(&CorpusConfig { trojan_free: 5, trojan_infected: 2, seed: 1 });
        let b = generate_corpus(&CorpusConfig { trojan_free: 5, trojan_infected: 2, seed: 2 });
        assert!(a.iter().zip(&b).any(|(x, y)| x.source != y.source));
    }

    #[test]
    fn infected_designs_carry_descriptors() {
        let corpus = generate_corpus(&CorpusConfig { trojan_free: 2, trojan_infected: 9, seed: 3 });
        let stats = corpus_stats(&corpus);
        assert!(stats.distinct_trojans >= 5, "only {} distinct kinds", stats.distinct_trojans);
        for b in &corpus {
            assert_eq!(b.label == Label::TrojanInfected, b.trojan.is_some());
        }
    }

    #[test]
    fn names_are_unique() {
        let corpus =
            generate_corpus(&CorpusConfig { trojan_free: 20, trojan_infected: 20, seed: 4 });
        let mut names: Vec<&str> = corpus.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }
}
