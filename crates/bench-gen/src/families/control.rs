//! Control-flavoured circuit families: UART transmitter, timer, FIFO
//! controller, SPI shifter, random Moore FSM, debouncer.

use noodle_verilog::{BinaryOp, Expr, Module};
use rand::{Rng, RngExt};

use crate::build::*;
use crate::circuit::{GeneratedCircuit, PayloadHook, SignalRef};

/// A UART transmitter: idle/start/data/stop FSM with a baud-rate divider
/// and a shift register.
pub fn gen_uart_tx<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let baud_bits: u64 = *[4u64, 6, 8].get(rng.random_range(0..3)).expect("index in range");
    let baud_max = (1u128 << baud_bits) - 1 - rng.random_range(0..4u128);
    let module = Module {
        name: "m".to_string(),
        ports: vec![
            input("clk", 1),
            input("rst", 1),
            input("start", 1),
            input("data", 8),
            output("tx", 1),
            output("busy", 1),
        ],
        items: vec![
            reg("state_q", 2),
            reg("baud_q", baud_bits),
            reg("bit_q", 3),
            reg("shift_q", 8),
            reg("tx_r", 1),
            wire("baud_hit", 1),
            assign("baud_hit", eq(id("baud_q"), dec(baud_bits as u32, baud_max))),
            always_ff_arst(
                "clk",
                "rst",
                if_else(
                    id("rst"),
                    block(vec![
                        nb("state_q", dec(2, 0)),
                        nb("baud_q", dec(baud_bits as u32, 0)),
                        nb("bit_q", dec(3, 0)),
                        nb("tx_r", bin(1, 1)),
                    ]),
                    case_stmt(
                        id("state_q"),
                        vec![
                            (
                                dec(2, 0), // idle
                                if_then(
                                    id("start"),
                                    block(vec![
                                        nb("shift_q", id("data")),
                                        nb("state_q", dec(2, 1)),
                                        nb("baud_q", dec(baud_bits as u32, 0)),
                                    ]),
                                ),
                            ),
                            (
                                dec(2, 1), // start bit
                                block(vec![
                                    nb("tx_r", bin(1, 0)),
                                    if_else(
                                        id("baud_hit"),
                                        block(vec![
                                            nb("state_q", dec(2, 2)),
                                            nb("baud_q", dec(baud_bits as u32, 0)),
                                            nb("bit_q", dec(3, 0)),
                                        ]),
                                        nb("baud_q", add(id("baud_q"), dec(baud_bits as u32, 1))),
                                    ),
                                ]),
                            ),
                            (
                                dec(2, 2), // data bits
                                block(vec![
                                    nb("tx_r", bit("shift_q", 0)),
                                    if_else(
                                        id("baud_hit"),
                                        block(vec![
                                            nb(
                                                "shift_q",
                                                Expr::Concat(vec![
                                                    bin(1, 0),
                                                    part("shift_q", 7, 1),
                                                ]),
                                            ),
                                            nb("baud_q", dec(baud_bits as u32, 0)),
                                            if_else(
                                                eq(id("bit_q"), dec(3, 7)),
                                                nb("state_q", dec(2, 3)),
                                                nb("bit_q", add(id("bit_q"), dec(3, 1))),
                                            ),
                                        ]),
                                        nb("baud_q", add(id("baud_q"), dec(baud_bits as u32, 1))),
                                    ),
                                ]),
                            ),
                        ],
                        // stop bit
                        block(vec![
                            nb("tx_r", bin(1, 1)),
                            if_else(
                                id("baud_hit"),
                                nb("state_q", dec(2, 0)),
                                nb("baud_q", add(id("baud_q"), dec(baud_bits as u32, 1))),
                            ),
                        ]),
                    ),
                ),
            ),
            assign("tx", id("tx_r")),
            assign("busy", bin_op(BinaryOp::Neq, id("state_q"), dec(2, 0))),
        ],
    };
    GeneratedCircuit {
        module,
        clock: Some("clk".into()),
        hooks: vec![PayloadHook { output: "tx".into(), internal: "tx_r".into(), width: 1 }],
        data_inputs: vec![SignalRef::new("data", 8)],
        secrets: vec![SignalRef::new("shift_q", 8)],
    }
}

/// A programmable timer that pulses `tick` when the counter reaches a
/// compare input and optionally auto-reloads.
pub fn gen_timer<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let w: u64 = *[8u64, 12, 16].get(rng.random_range(0..3)).expect("index in range");
    let auto_reload = rng.random::<bool>();
    let on_hit = if auto_reload {
        block(vec![nb("cnt_q", dec(w as u32, 0)), nb("tick_r", bin(1, 1))])
    } else {
        nb("tick_r", bin(1, 1))
    };
    let module = Module {
        name: "m".to_string(),
        ports: vec![
            input("clk", 1),
            input("rst", 1),
            input("en", 1),
            input("cmp", w),
            output("tick", 1),
            output("count", w),
        ],
        items: vec![
            reg("cnt_q", w),
            reg("tick_r", 1),
            always_ff_arst(
                "clk",
                "rst",
                if_else(
                    id("rst"),
                    block(vec![nb("cnt_q", dec(w as u32, 0)), nb("tick_r", bin(1, 0))]),
                    if_then(
                        id("en"),
                        block(vec![
                            nb("tick_r", bin(1, 0)),
                            if_else(
                                eq(id("cnt_q"), id("cmp")),
                                on_hit,
                                nb("cnt_q", add(id("cnt_q"), dec(w as u32, 1))),
                            ),
                        ]),
                    ),
                ),
            ),
            assign("tick", id("tick_r")),
            assign("count", id("cnt_q")),
        ],
    };
    GeneratedCircuit {
        module,
        clock: Some("clk".into()),
        hooks: vec![
            PayloadHook { output: "tick".into(), internal: "tick_r".into(), width: 1 },
            PayloadHook { output: "count".into(), internal: "cnt_q".into(), width: w },
        ],
        data_inputs: vec![SignalRef::new("cmp", w)],
        secrets: vec![SignalRef::new("cnt_q", w)],
    }
}

/// A synchronous FIFO controller: pointers, occupancy counter and flags.
pub fn gen_fifo_ctrl<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let aw: u64 = *[3u64, 4, 5].get(rng.random_range(0..3)).expect("index in range");
    let depth = 1u128 << aw;
    let cw = aw + 1;
    let module = Module {
        name: "m".to_string(),
        ports: vec![
            input("clk", 1),
            input("rst", 1),
            input("push", 1),
            input("pop", 1),
            output("full", 1),
            output("empty", 1),
            output("level", cw),
        ],
        items: vec![
            reg("wptr_q", aw),
            reg("rptr_q", aw),
            reg("count_q", cw),
            wire("do_push", 1),
            wire("do_pop", 1),
            wire("full_w", 1),
            wire("empty_w", 1),
            assign("full_w", eq(id("count_q"), dec(cw as u32, depth))),
            assign("empty_w", eq(id("count_q"), dec(cw as u32, 0))),
            assign("do_push", land(id("push"), lnot(id("full_w")))),
            assign("do_pop", land(id("pop"), lnot(id("empty_w")))),
            always_ff_arst(
                "clk",
                "rst",
                if_else(
                    id("rst"),
                    block(vec![
                        nb("wptr_q", dec(aw as u32, 0)),
                        nb("rptr_q", dec(aw as u32, 0)),
                        nb("count_q", dec(cw as u32, 0)),
                    ]),
                    block(vec![
                        if_then(id("do_push"), nb("wptr_q", add(id("wptr_q"), dec(aw as u32, 1)))),
                        if_then(id("do_pop"), nb("rptr_q", add(id("rptr_q"), dec(aw as u32, 1)))),
                        if_then(
                            land(id("do_push"), lnot(id("do_pop"))),
                            nb("count_q", add(id("count_q"), dec(cw as u32, 1))),
                        ),
                        if_then(
                            land(id("do_pop"), lnot(id("do_push"))),
                            nb("count_q", sub(id("count_q"), dec(cw as u32, 1))),
                        ),
                    ]),
                ),
            ),
            assign("full", id("full_w")),
            assign("empty", id("empty_w")),
            assign("level", id("count_q")),
        ],
    };
    GeneratedCircuit {
        module,
        clock: Some("clk".into()),
        hooks: vec![
            PayloadHook { output: "full".into(), internal: "full_w".into(), width: 1 },
            PayloadHook { output: "empty".into(), internal: "empty_w".into(), width: 1 },
            PayloadHook { output: "level".into(), internal: "count_q".into(), width: cw },
        ],
        data_inputs: vec![],
        secrets: vec![SignalRef::new("wptr_q", aw), SignalRef::new("rptr_q", aw)],
    }
}

/// An SPI-style shifter that serializes a parallel word on `mosi`.
pub fn gen_spi_shift<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let w: u64 = *[8u64, 16].get(rng.random_range(0..2)).expect("index in range");
    let idx_bits = if w == 8 { 3u64 } else { 4 };
    let module = Module {
        name: "m".to_string(),
        ports: vec![
            input("clk", 1),
            input("rst", 1),
            input("go", 1),
            input("tx_data", w),
            output("mosi", 1),
            output("done", 1),
        ],
        items: vec![
            reg("sh_q", w),
            reg("idx_q", idx_bits),
            reg("run_q", 1),
            wire("mosi_w", 1),
            wire("done_w", 1),
            assign("mosi_w", bit("sh_q", (w - 1) as u128)),
            assign("done_w", lnot(id("run_q"))),
            always_ff_arst(
                "clk",
                "rst",
                if_else(
                    id("rst"),
                    block(vec![
                        nb("run_q", bin(1, 0)),
                        nb("idx_q", dec(idx_bits as u32, 0)),
                        nb("sh_q", dec(w as u32, 0)),
                    ]),
                    if_else(
                        land(id("go"), lnot(id("run_q"))),
                        block(vec![
                            nb("sh_q", id("tx_data")),
                            nb("run_q", bin(1, 1)),
                            nb("idx_q", dec(idx_bits as u32, 0)),
                        ]),
                        if_then(
                            id("run_q"),
                            block(vec![
                                nb(
                                    "sh_q",
                                    Expr::Concat(vec![part("sh_q", w as i64 - 2, 0), bin(1, 0)]),
                                ),
                                if_else(
                                    eq(id("idx_q"), dec(idx_bits as u32, (w - 1) as u128)),
                                    nb("run_q", bin(1, 0)),
                                    nb("idx_q", add(id("idx_q"), dec(idx_bits as u32, 1))),
                                ),
                            ]),
                        ),
                    ),
                ),
            ),
            assign("mosi", id("mosi_w")),
            assign("done", id("done_w")),
        ],
    };
    GeneratedCircuit {
        module,
        clock: Some("clk".into()),
        hooks: vec![
            PayloadHook { output: "mosi".into(), internal: "mosi_w".into(), width: 1 },
            PayloadHook { output: "done".into(), internal: "done_w".into(), width: 1 },
        ],
        data_inputs: vec![SignalRef::new("tx_data", w)],
        secrets: vec![SignalRef::new("sh_q", w)],
    }
}

/// A random Moore FSM over 4–8 states with a 2-bit input alphabet.
pub fn gen_moore_fsm<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let n_states = rng.random_range(4..=8u128);
    let sw = 3u64;
    // next[state][input] random
    let mut arms = Vec::new();
    for s in 0..n_states {
        let mut inner = Vec::new();
        for i in 0..4u128 {
            let next = rng.random_range(0..n_states);
            inner.push((dec(2, i), blk("next_s", dec(sw as u32, next))));
        }
        arms.push((
            dec(sw as u32, s),
            case_stmt(id("inp"), inner, blk("next_s", dec(sw as u32, 0))),
        ));
    }
    let out_bits: u128 = rng.random_range(0..1u128 << n_states);
    let module = Module {
        name: "m".to_string(),
        ports: vec![
            input("clk", 1),
            input("rst", 1),
            input("inp", 2),
            output("out_bit", 1),
            output("state", sw),
        ],
        items: vec![
            reg("state_q", sw),
            reg("next_s", sw),
            wire("out_w", 1),
            always_comb(case_stmt(id("state_q"), arms, blk("next_s", dec(sw as u32, 0)))),
            always_ff_arst(
                "clk",
                "rst",
                if_else(id("rst"), nb("state_q", dec(sw as u32, 0)), nb("state_q", id("next_s"))),
            ),
            // Output decode: one random bit per state via a shift of a mask.
            assign(
                "out_w",
                bin_op(
                    BinaryOp::BitAnd,
                    bin_op(BinaryOp::Shr, dec(8, out_bits & 0xFF), id("state_q")),
                    dec(8, 1),
                ),
            ),
            assign("out_bit", id("out_w")),
            assign("state", id("state_q")),
        ],
    };
    GeneratedCircuit {
        module,
        clock: Some("clk".into()),
        hooks: vec![
            PayloadHook { output: "out_bit".into(), internal: "out_w".into(), width: 1 },
            PayloadHook { output: "state".into(), internal: "state_q".into(), width: sw },
        ],
        data_inputs: vec![SignalRef::new("inp", 2)],
        secrets: vec![SignalRef::new("state_q", sw)],
    }
}

/// A majority-vote debouncer over a configurable shift window.
pub fn gen_debouncer<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let w: u64 = *[3u64, 4, 5].get(rng.random_range(0..3)).expect("index in range");
    let all_ones = (1u128 << w) - 1;
    let module = Module {
        name: "m".to_string(),
        ports: vec![input("clk", 1), input("rst", 1), input("din", 1), output("dout", 1)],
        items: vec![
            reg("win_q", w),
            reg("out_q", 1),
            wire("dout_w", 1),
            always_ff_arst(
                "clk",
                "rst",
                if_else(
                    id("rst"),
                    block(vec![nb("win_q", dec(w as u32, 0)), nb("out_q", bin(1, 0))]),
                    block(vec![
                        nb("win_q", Expr::Concat(vec![part("win_q", w as i64 - 2, 0), id("din")])),
                        if_then(eq(id("win_q"), dec(w as u32, all_ones)), nb("out_q", bin(1, 1))),
                        if_then(eq(id("win_q"), dec(w as u32, 0)), nb("out_q", bin(1, 0))),
                    ]),
                ),
            ),
            assign("dout_w", id("out_q")),
            assign("dout", id("dout_w")),
        ],
    };
    GeneratedCircuit {
        module,
        clock: Some("clk".into()),
        hooks: vec![PayloadHook { output: "dout".into(), internal: "dout_w".into(), width: 1 }],
        data_inputs: vec![],
        secrets: vec![SignalRef::new("win_q", w)],
    }
}

/// A round-robin arbiter: a rotating pointer grants one requester per
/// cycle, skipping to the next position every clock.
pub fn gen_round_robin<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let w: u64 = *[4u64, 8].get(rng.random_range(0..2)).expect("index in range");
    let pw = if w == 4 { 2u64 } else { 3 };
    let mut grant_arms = Vec::new();
    for i in 0..w {
        grant_arms.push((
            dec(pw as u32, i as u128),
            blk("grant_r", mux(bit("req", i as u128), dec(w as u32, 1u128 << i), dec(w as u32, 0))),
        ));
    }
    let module = Module {
        name: "m".to_string(),
        ports: vec![
            input("clk", 1),
            input("rst", 1),
            input("req", w),
            output("grant", w),
            output("active", 1),
        ],
        items: vec![
            reg("ptr_q", pw),
            reg("grant_r", w),
            always_ff_arst(
                "clk",
                "rst",
                if_else(
                    id("rst"),
                    nb("ptr_q", dec(pw as u32, 0)),
                    nb("ptr_q", add(id("ptr_q"), dec(pw as u32, 1))),
                ),
            ),
            always_comb(case_stmt(id("ptr_q"), grant_arms, blk("grant_r", dec(w as u32, 0)))),
            assign("grant", id("grant_r")),
            assign(
                "active",
                noodle_verilog::Expr::unary(noodle_verilog::UnaryOp::RedOr, id("grant_r")),
            ),
        ],
    };
    GeneratedCircuit {
        module,
        clock: Some("clk".into()),
        hooks: vec![PayloadHook { output: "grant".into(), internal: "grant_r".into(), width: w }],
        data_inputs: vec![SignalRef::new("req", w)],
        secrets: vec![SignalRef::new("ptr_q", pw)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noodle_verilog::{parse, print_module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uart_state_machine_has_case() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = gen_uart_tx(&mut rng);
        let text = print_module(&c.module);
        assert!(text.contains("case"), "{text}");
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn fifo_flags_are_hooked() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = gen_fifo_ctrl(&mut rng);
        assert_eq!(c.hooks.len(), 3);
    }

    #[test]
    fn moore_fsm_varies_state_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let sizes: Vec<usize> =
            (0..10).map(|_| print_module(&gen_moore_fsm(&mut rng).module).len()).collect();
        let distinct: std::collections::HashSet<_> = sizes.iter().collect();
        assert!(distinct.len() > 1, "FSM instances should vary: {sizes:?}");
    }
}
