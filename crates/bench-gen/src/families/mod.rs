//! Benign circuit family generators.
//!
//! Each generator builds a parameterized, randomized instance of a small IP
//! core as a `noodle-verilog` AST, together with the [`GeneratedCircuit`]
//! metadata that Trojan insertion uses. Randomization (bit widths, magic
//! constants, optional pipeline registers, FSM sizes) makes every instance
//! structurally distinct, mirroring the diversity of the TrustHub corpus.

mod control;
mod datapath;

use rand::Rng;

use crate::circuit::{CircuitFamily, GeneratedCircuit};

pub use control::{
    gen_debouncer, gen_fifo_ctrl, gen_moore_fsm, gen_round_robin, gen_spi_shift, gen_timer,
    gen_uart_tx,
};
pub use datapath::{
    gen_alu, gen_arbiter, gen_crc, gen_crypto_round, gen_gray_counter, gen_lfsr, gen_pwm,
};

/// Generates one instance of the given family with a unique module name.
pub fn generate<R: Rng + ?Sized>(
    family: CircuitFamily,
    name: &str,
    rng: &mut R,
) -> GeneratedCircuit {
    let mut c = match family {
        CircuitFamily::UartTx => gen_uart_tx(rng),
        CircuitFamily::Alu => gen_alu(rng),
        CircuitFamily::Timer => gen_timer(rng),
        CircuitFamily::FifoCtrl => gen_fifo_ctrl(rng),
        CircuitFamily::SpiShift => gen_spi_shift(rng),
        CircuitFamily::MooreFsm => gen_moore_fsm(rng),
        CircuitFamily::CryptoRound => gen_crypto_round(rng),
        CircuitFamily::Pwm => gen_pwm(rng),
        CircuitFamily::Lfsr => gen_lfsr(rng),
        CircuitFamily::GrayCounter => gen_gray_counter(rng),
        CircuitFamily::Arbiter => gen_arbiter(rng),
        CircuitFamily::Debouncer => gen_debouncer(rng),
        CircuitFamily::CrcGen => gen_crc(rng),
        CircuitFamily::RoundRobin => gen_round_robin(rng),
    };
    c.module.name = name.to_string();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use noodle_verilog::{parse, print_module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_family_generates_parseable_verilog() {
        let mut rng = StdRng::seed_from_u64(99);
        for family in CircuitFamily::ALL {
            for i in 0..5 {
                let c = generate(family, &format!("{}_{i}", family.tag()), &mut rng);
                let text = print_module(&c.module);
                let parsed =
                    parse(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", family.tag()));
                assert_eq!(parsed.modules[0].name, c.module.name);
            }
        }
    }

    #[test]
    fn every_family_exposes_hooks() {
        let mut rng = StdRng::seed_from_u64(7);
        for family in CircuitFamily::ALL {
            let c = generate(family, "m", &mut rng);
            assert!(!c.hooks.is_empty(), "{} has no payload hooks", family.tag());
            // Every hook must correspond to an actual `assign out = internal;`.
            for hook in &c.hooks {
                let found = c.module.items.iter().any(|item| {
                    matches!(
                        item,
                        noodle_verilog::Item::Assign {
                            lhs: noodle_verilog::LValue::Ident(o),
                            rhs: noodle_verilog::Expr::Ident(i)
                        } if *o == hook.output && *i == hook.internal
                    )
                });
                assert!(found, "{}: hook {hook:?} has no matching assign", family.tag());
            }
        }
    }

    #[test]
    fn sequential_families_declare_their_clock() {
        let mut rng = StdRng::seed_from_u64(3);
        for family in CircuitFamily::ALL {
            let c = generate(family, "m", &mut rng);
            if let Some(clock) = &c.clock {
                assert!(
                    c.module.ports.iter().any(|p| &p.name == clock),
                    "{}: clock {clock} is not a port",
                    family.tag()
                );
            }
        }
    }

    #[test]
    fn instances_vary_structurally() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = print_module(&generate(CircuitFamily::Alu, "m", &mut rng).module);
        let b = print_module(&generate(CircuitFamily::Alu, "m", &mut rng).module);
        assert_ne!(a, b, "two random ALU instances should differ");
    }
}
