//! Datapath-flavoured circuit families: ALU, cipher round, LFSR, Gray
//! counter, PWM, priority arbiter.

use noodle_verilog::{BinaryOp, Module, Stmt};
use rand::{Rng, RngExt};

use crate::build::*;
use crate::circuit::{GeneratedCircuit, PayloadHook, SignalRef};

fn mask(width: u64) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

/// A simple ALU: registered result of a case over the opcode.
pub fn gen_alu<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let w: u64 = *[8u64, 16].get(rng.random_range(0..2)).expect("index in range");
    let n_ops = rng.random_range(4..=7usize);
    let ops: Vec<(u128, Box<dyn Fn() -> noodle_verilog::Expr>)> = vec![
        (0, Box::new(move || add(id("a"), id("b")))),
        (1, Box::new(move || sub(id("a"), id("b")))),
        (2, Box::new(move || band(id("a"), id("b")))),
        (3, Box::new(move || bor(id("a"), id("b")))),
        (4, Box::new(move || bxor(id("a"), id("b")))),
        (5, Box::new(move || bnot(id("a")))),
        (6, Box::new(move || bin_op(BinaryOp::Shl, id("a"), num(1)))),
    ];
    let arms: Vec<_> = ops
        .into_iter()
        .take(n_ops)
        .map(|(code, make)| (dec(3, code), blk("alu_r", make())))
        .collect();
    let module = Module {
        name: "m".to_string(),
        ports: vec![
            input("clk", 1),
            input("op", 3),
            input("a", w),
            input("b", w),
            output("y", w),
            output("zero", 1),
        ],
        items: vec![
            reg("alu_r", w),
            reg("res_q", w),
            always_comb(case_stmt(id("op"), arms, blk("alu_r", dec(w as u32, 0)))),
            always_ff("clk", nb("res_q", id("alu_r"))),
            assign("y", id("res_q")),
            assign("zero", eq(id("res_q"), dec(w as u32, 0))),
        ],
    };
    GeneratedCircuit {
        module,
        clock: Some("clk".into()),
        hooks: vec![PayloadHook { output: "y".into(), internal: "res_q".into(), width: w }],
        data_inputs: vec![SignalRef::new("a", w), SignalRef::new("b", w)],
        secrets: vec![SignalRef::new("alu_r", w)],
    }
}

/// A toy substitution–permutation cipher round: key XOR, 3-bit S-box via
/// case, rotate, output register.
pub fn gen_crypto_round<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let w = 8u64;
    // Random 3-bit S-box over the low bits.
    let mut sbox: Vec<u128> = (0..8).collect();
    for i in (1..8).rev() {
        let j = rng.random_range(0..=i);
        sbox.swap(i, j);
    }
    let arms: Vec<_> = sbox
        .iter()
        .enumerate()
        .map(|(i, &v)| (dec(3, i as u128), blk("sub_lo", dec(3, v))))
        .collect();
    let module = Module {
        name: "m".to_string(),
        ports: vec![
            input("clk", 1),
            input("rst", 1),
            input("din", w),
            input("key", w),
            input("load", 1),
            output("dout", w),
        ],
        items: vec![
            wire("mixed", w),
            reg("sub_lo", 3),
            reg("state_q", w),
            assign("mixed", bxor(id("din"), id("key"))),
            always_comb(case_stmt(part("mixed", 2, 0), arms, blk("sub_lo", dec(3, 0)))),
            always_ff_arst(
                "clk",
                "rst",
                if_else(
                    id("rst"),
                    nb("state_q", dec(w as u32, 0)),
                    if_then(
                        id("load"),
                        nb(
                            "state_q",
                            noodle_verilog::Expr::Concat(vec![part("mixed", 7, 3), id("sub_lo")]),
                        ),
                    ),
                ),
            ),
            assign("dout", id("state_q")),
        ],
    };
    GeneratedCircuit {
        module,
        clock: Some("clk".into()),
        hooks: vec![PayloadHook { output: "dout".into(), internal: "state_q".into(), width: w }],
        data_inputs: vec![SignalRef::new("din", w), SignalRef::new("key", w)],
        secrets: vec![SignalRef::new("key", w), SignalRef::new("state_q", w)],
    }
}

/// A Fibonacci LFSR with a randomly chosen tap pair.
pub fn gen_lfsr<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let w: u64 = *[8u64, 12, 16].get(rng.random_range(0..3)).expect("index in range");
    let tap1 = (w - 1) as u128;
    let tap2 = rng.random_range(1..w - 1) as u128;
    let seed = rng.random_range(1..mask(w));
    let module = Module {
        name: "m".to_string(),
        ports: vec![input("clk", 1), input("rst", 1), output("rnd", w)],
        items: vec![
            reg("lfsr_q", w),
            wire("fb", 1),
            assign("fb", bxor(bit("lfsr_q", tap1), bit("lfsr_q", tap2))),
            always_ff_arst(
                "clk",
                "rst",
                if_else(
                    id("rst"),
                    nb("lfsr_q", dec(w as u32, seed)),
                    nb(
                        "lfsr_q",
                        noodle_verilog::Expr::Concat(vec![
                            part("lfsr_q", w as i64 - 2, 0),
                            id("fb"),
                        ]),
                    ),
                ),
            ),
            assign("rnd", id("lfsr_q")),
        ],
    };
    GeneratedCircuit {
        module,
        clock: Some("clk".into()),
        hooks: vec![PayloadHook { output: "rnd".into(), internal: "lfsr_q".into(), width: w }],
        data_inputs: vec![],
        secrets: vec![SignalRef::new("lfsr_q", w)],
    }
}

/// A binary counter with Gray-coded output.
pub fn gen_gray_counter<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let w: u64 = *[4u64, 6, 8].get(rng.random_range(0..3)).expect("index in range");
    let module = Module {
        name: "m".to_string(),
        ports: vec![input("clk", 1), input("rst", 1), input("en", 1), output("gray", w)],
        items: vec![
            reg("bin_q", w),
            wire("gray_w", w),
            always_ff_arst(
                "clk",
                "rst",
                if_else(
                    id("rst"),
                    nb("bin_q", dec(w as u32, 0)),
                    if_then(id("en"), nb("bin_q", add(id("bin_q"), dec(w as u32, 1)))),
                ),
            ),
            assign("gray_w", bxor(id("bin_q"), bin_op(BinaryOp::Shr, id("bin_q"), num(1)))),
            assign("gray", id("gray_w")),
        ],
    };
    GeneratedCircuit {
        module,
        clock: Some("clk".into()),
        hooks: vec![PayloadHook { output: "gray".into(), internal: "gray_w".into(), width: w }],
        data_inputs: vec![],
        secrets: vec![SignalRef::new("bin_q", w)],
    }
}

/// A PWM generator comparing a free-running counter with a duty input.
pub fn gen_pwm<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let w: u64 = *[8u64, 10].get(rng.random_range(0..2)).expect("index in range");
    let has_sync = rng.random::<bool>();
    let mut items = vec![
        reg("cnt_q", w),
        wire("pwm_w", 1),
        always_ff_arst(
            "clk",
            "rst",
            if_else(
                id("rst"),
                nb("cnt_q", dec(w as u32, 0)),
                nb("cnt_q", add(id("cnt_q"), dec(w as u32, 1))),
            ),
        ),
        assign("pwm_w", bin_op(BinaryOp::Lt, id("cnt_q"), id("duty"))),
        assign("pwm_out", id("pwm_w")),
    ];
    if has_sync {
        items.push(wire("sync_w", 1));
        items.push(assign("sync_w", eq(id("cnt_q"), dec(w as u32, 0))));
        items.push(assign("sync", id("sync_w")));
    }
    let mut ports = vec![input("clk", 1), input("rst", 1), input("duty", w), output("pwm_out", 1)];
    let mut hooks =
        vec![PayloadHook { output: "pwm_out".into(), internal: "pwm_w".into(), width: 1 }];
    if has_sync {
        ports.push(output("sync", 1));
        hooks.push(PayloadHook { output: "sync".into(), internal: "sync_w".into(), width: 1 });
    }
    GeneratedCircuit {
        module: Module { name: "m".to_string(), ports, items },
        clock: Some("clk".into()),
        hooks,
        data_inputs: vec![SignalRef::new("duty", w)],
        secrets: vec![SignalRef::new("cnt_q", w)],
    }
}

/// A combinational fixed-priority arbiter.
pub fn gen_arbiter<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let w: u64 = *[4u64, 8].get(rng.random_range(0..2)).expect("index in range");
    // grant[i] = req[i] & ~(req[i-1] | ... | req[0]) via cascading statements.
    let mut stmts: Vec<Stmt> = vec![blk("grant_r", dec(w as u32, 0))];
    let mut cascade: Vec<Stmt> = Vec::new();
    for i in (0..w).rev() {
        let lower_free = (0..i).fold(lnot(bit("req", 0)), |acc, j| {
            if j == 0 {
                acc
            } else {
                land(acc, lnot(bit("req", j as u128)))
            }
        });
        let cond = if i == 0 { bit("req", 0) } else { land(bit("req", i as u128), lower_free) };
        cascade.push(if_then(
            cond,
            Stmt::Blocking {
                lhs: noodle_verilog::LValue::Bit {
                    name: "grant_r".into(),
                    index: Box::new(num(i as u128)),
                },
                rhs: bin(1, 1),
            },
        ));
    }
    stmts.extend(cascade);
    let module = Module {
        name: "m".to_string(),
        ports: vec![input("req", w), output("grant", w), output("busy", 1)],
        items: vec![
            reg("grant_r", w),
            always_comb(block(stmts)),
            assign("grant", id("grant_r")),
            assign("busy", noodle_verilog::Expr::unary(noodle_verilog::UnaryOp::RedOr, id("req"))),
        ],
    };
    GeneratedCircuit {
        module,
        clock: None,
        hooks: vec![PayloadHook { output: "grant".into(), internal: "grant_r".into(), width: w }],
        data_inputs: vec![SignalRef::new("req", w)],
        secrets: vec![],
    }
}

/// A serial CRC generator with a randomly chosen 8-bit polynomial.
pub fn gen_crc<R: Rng + ?Sized>(rng: &mut R) -> GeneratedCircuit {
    let w = 8u64;
    // Ensure the polynomial has its low bit set (a proper CRC generator).
    let poly = rng.random_range(0..mask(w)) | 1;
    let module = Module {
        name: "m".to_string(),
        ports: vec![
            input("clk", 1),
            input("rst", 1),
            input("en", 1),
            input("bit_in", 1),
            output("crc", w),
        ],
        items: vec![
            reg("crc_q", w),
            wire("fb", 1),
            wire("shifted", w),
            assign("fb", bxor(bit("crc_q", (w - 1) as u128), id("bit_in"))),
            assign(
                "shifted",
                noodle_verilog::Expr::Concat(vec![part("crc_q", w as i64 - 2, 0), bin(1, 0)]),
            ),
            always_ff_arst(
                "clk",
                "rst",
                if_else(
                    id("rst"),
                    nb("crc_q", dec(w as u32, 0)),
                    if_then(
                        id("en"),
                        nb(
                            "crc_q",
                            mux(id("fb"), bxor(id("shifted"), dec(w as u32, poly)), id("shifted")),
                        ),
                    ),
                ),
            ),
            assign("crc", id("crc_q")),
        ],
    };
    GeneratedCircuit {
        module,
        clock: Some("clk".into()),
        hooks: vec![PayloadHook { output: "crc".into(), internal: "crc_q".into(), width: w }],
        data_inputs: vec![],
        secrets: vec![SignalRef::new("crc_q", w)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noodle_verilog::{parse, print_module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arbiter_priority_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = gen_arbiter(&mut rng);
        let text = print_module(&c.module);
        assert!(parse(&text).is_ok(), "{text}");
        assert!(c.clock.is_none());
    }

    #[test]
    fn crypto_round_has_secrets() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = gen_crypto_round(&mut rng);
        assert!(c.secrets.iter().any(|s| s.name == "key"));
    }

    #[test]
    fn lfsr_seed_is_nonzero() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let c = gen_lfsr(&mut rng);
            let text = print_module(&c.module);
            assert!(parse(&text).is_ok());
            // A zero seed would lock the LFSR; the generator avoids it.
            assert!(!text.contains("lfsr_q <= 8'd0;\n"), "{text}");
        }
    }
}
