//! Coding-style variation transforms.
//!
//! Two RTL designs with identical function routinely differ in idiom:
//! continuous assigns vs combinational always blocks, explicit intermediate
//! nets, conditional operators vs if/else. The TrustHub corpus mixes all of
//! these, which is a large source of label-independent feature variance.
//! This module applies semantics-preserving style rewrites to a finished
//! design (including any inserted Trojan, whose author has a coding style
//! too), so the corpus does not accidentally encode "Trojan ⇔ one specific
//! idiom".
//!
//! Transforms:
//!
//! * **intermediate net** — `assign y = expr;` becomes
//!   `wire t; assign t = expr; assign y = t;`
//! * **assign → always** — a continuous assign to an internal wire becomes
//!   a combinational always block (the net is re-declared `reg`)
//! * **mux → if/else** — an assign whose right side is a conditional
//!   operator becomes an `always @*` if/else (the net becomes `reg`)

use std::collections::HashSet;

use noodle_verilog::{Expr, Item, LValue, Module, NetType, Stmt};
use rand::{Rng, RngExt};

/// Probability of restyling any individual eligible assign.
const STYLE_RATE: f64 = 0.35;

/// Applies random style rewrites to a module in place.
///
/// Only continuous assigns to whole, internally-declared signals are
/// touched; ports and procedural logic keep their shape. The rewrite is
/// semantics-preserving.
pub fn apply_style_variations<R: Rng + ?Sized>(module: &mut Module, rng: &mut R) {
    let port_names: HashSet<String> = module.ports.iter().map(|p| p.name.clone()).collect();
    let wire_names: HashSet<String> = module
        .items
        .iter()
        .filter_map(|item| match item {
            Item::Decl { net: NetType::Wire, names, .. } => Some(names.clone()),
            _ => None,
        })
        .flatten()
        .collect();

    let mut new_items: Vec<Item> = Vec::with_capacity(module.items.len());
    let mut to_reg: HashSet<String> = HashSet::new();
    let mut fresh = 0usize;
    for item in module.items.drain(..) {
        match item {
            Item::Assign { lhs: LValue::Ident(name), rhs } => {
                let is_internal_wire = wire_names.contains(&name) && !port_names.contains(&name);
                let is_plain_output_port = module.ports.iter().any(|p| p.name == name && !p.is_reg);
                let style: f64 = rng.random();
                if style < STYLE_RATE
                    && matches!(rhs, Expr::Ternary { .. })
                    && (is_internal_wire || is_plain_output_port)
                {
                    // mux → always @* if/else
                    let Expr::Ternary { cond, then_expr, else_expr } = rhs else {
                        unreachable!("matched above")
                    };
                    if is_plain_output_port {
                        for p in &mut module.ports {
                            if p.name == name {
                                p.is_reg = true;
                            }
                        }
                    } else {
                        to_reg.insert(name.clone());
                    }
                    new_items.push(Item::Always {
                        event: noodle_verilog::EventControl::Star,
                        body: Stmt::If {
                            cond: *cond,
                            then_branch: Box::new(Stmt::Blocking {
                                lhs: LValue::Ident(name.clone()),
                                rhs: *then_expr,
                            }),
                            else_branch: Some(Box::new(Stmt::Blocking {
                                lhs: LValue::Ident(name),
                                rhs: *else_expr,
                            })),
                        },
                    });
                } else if style < STYLE_RATE * 2.0 && is_internal_wire {
                    // assign → always @*
                    to_reg.insert(name.clone());
                    new_items.push(Item::Always {
                        event: noodle_verilog::EventControl::Star,
                        body: Stmt::Blocking { lhs: LValue::Ident(name), rhs },
                    });
                } else if style < STYLE_RATE * 3.0 {
                    // explicit intermediate net
                    let tmp = format!("style_n{fresh}");
                    fresh += 1;
                    new_items.push(Item::Decl {
                        net: NetType::Wire,
                        range: None,
                        names: vec![tmp.clone()],
                    });
                    // Only safe for 1-bit results when widths matter; to stay
                    // width-safe, keep the original expression on the
                    // original target and route the *copy* through the net:
                    // tmp carries the expression only for 1-bit signals.
                    // For simplicity and width-safety, the intermediate net
                    // forwards the final value instead:
                    //   assign tmp = <rhs>; assign y = tmp;
                    // which is width-safe only when tmp has y's width; since
                    // we do not know y's width here, apply this rewrite only
                    // to 1-bit comparisons/reductions, else keep as-is.
                    if expr_is_single_bit(&rhs) {
                        new_items.push(Item::Assign { lhs: LValue::Ident(tmp.clone()), rhs });
                        new_items
                            .push(Item::Assign { lhs: LValue::Ident(name), rhs: Expr::Ident(tmp) });
                    } else {
                        new_items.pop(); // remove the unused tmp decl
                        new_items.push(Item::Assign { lhs: LValue::Ident(name), rhs });
                    }
                } else {
                    new_items.push(Item::Assign { lhs: LValue::Ident(name), rhs });
                }
            }
            other => new_items.push(other),
        }
    }

    // Re-declare restyled nets as regs.
    for item in &mut new_items {
        if let Item::Decl { net, names, .. } = item {
            if *net == NetType::Wire && names.iter().any(|n| to_reg.contains(n)) {
                // Split mixed declarations if necessary.
                if names.iter().all(|n| to_reg.contains(n)) {
                    *net = NetType::Reg;
                }
            }
        }
    }
    // Handle mixed declarations (some names restyled, some not).
    let mut final_items = Vec::with_capacity(new_items.len());
    for item in new_items {
        match item {
            Item::Decl { net: NetType::Wire, range, names }
                if names.iter().any(|n| to_reg.contains(n)) =>
            {
                let (regs, wires): (Vec<String>, Vec<String>) =
                    names.into_iter().partition(|n| to_reg.contains(n));
                if !wires.is_empty() {
                    final_items.push(Item::Decl { net: NetType::Wire, range, names: wires });
                }
                final_items.push(Item::Decl { net: NetType::Reg, range, names: regs });
            }
            other => final_items.push(other),
        }
    }
    module.items = final_items;
}

/// Conservatively detects expressions whose result is one bit wide.
fn expr_is_single_bit(expr: &Expr) -> bool {
    use noodle_verilog::{BinaryOp, UnaryOp};
    match expr {
        Expr::Binary { op, .. } => matches!(
            op,
            BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::CaseEq
                | BinaryOp::CaseNeq
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::LogicAnd
                | BinaryOp::LogicOr
        ),
        Expr::Unary { op, .. } => {
            matches!(op, UnaryOp::Not | UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor)
        }
        Expr::Bit { .. } => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitFamily;
    use crate::families::generate;
    use noodle_verilog::{parse, print_module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn restyled_modules_parse_for_every_family() {
        let mut rng = StdRng::seed_from_u64(1);
        for family in CircuitFamily::ALL {
            for _ in 0..4 {
                let mut c = generate(family, "styled", &mut rng);
                apply_style_variations(&mut c.module, &mut rng);
                let text = print_module(&c.module);
                assert!(parse(&text).is_ok(), "{}:\n{text}", family.tag());
            }
        }
    }

    #[test]
    fn style_changes_structure_but_not_interface() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut changed = 0;
        for seed in 0..20 {
            let mut rng2 = StdRng::seed_from_u64(seed);
            let c0 = generate(CircuitFamily::FifoCtrl, "styled", &mut rng2);
            let mut c = c0.clone();
            apply_style_variations(&mut c.module, &mut rng);
            assert_eq!(c.module.ports, c0.module.ports, "ports must not change");
            if print_module(&c.module) != print_module(&c0.module) {
                changed += 1;
            }
        }
        assert!(changed > 5, "style variations almost never fired: {changed}/20");
    }

    #[test]
    fn restyled_trojan_still_parses() {
        use crate::trojan::{insert_trojan, TrojanSpec};
        let mut rng = StdRng::seed_from_u64(3);
        for spec in TrojanSpec::all() {
            let mut c = generate(CircuitFamily::CryptoRound, "victim", &mut rng);
            insert_trojan(&mut c, spec, &mut rng);
            apply_style_variations(&mut c.module, &mut rng);
            let text = print_module(&c.module);
            assert!(parse(&text).is_ok(), "{spec:?}\n{text}");
        }
    }

    #[test]
    fn single_bit_detection() {
        use noodle_verilog::BinaryOp;
        use noodle_verilog::Expr;
        assert!(expr_is_single_bit(&Expr::binary(
            BinaryOp::Eq,
            Expr::ident("a"),
            Expr::ident("b")
        )));
        assert!(!expr_is_single_bit(&Expr::binary(
            BinaryOp::Add,
            Expr::ident("a"),
            Expr::ident("b")
        )));
        assert!(!expr_is_single_bit(&Expr::ident("a")));
    }
}
