//! Composition of several generated cores into one larger IP module.
//!
//! TrustHub RTL benchmarks are whole IPs (UART stacks, crypto cores, …)
//! hundreds to thousands of lines long in which a Trojan is a sub-percent
//! fraction of the logic. Single 50-line cores make the Trojan footprint
//! unrealistically large, so the corpus generator flattens several cores
//! into one module: every signal of core *i* is prefixed `u<i>_`, clock
//! and reset are shared, and the composite inherits every core's payload
//! hooks, data inputs and secrets.

use noodle_verilog::transform::rename_item;
use noodle_verilog::{Item, Module, Port};

use crate::circuit::{GeneratedCircuit, PayloadHook, SignalRef};

/// Signals shared (not prefixed) across composed cores.
const SHARED: [&str; 2] = ["clk", "rst"];

/// Flattens `cores` into a single module named `name`.
///
/// Core *i*'s signals are renamed with the prefix `u<i>_` (clock/reset are
/// shared). The composite exposes the union of all ports and inherits all
/// hooks, data inputs and secrets, so Trojan insertion and decoration work
/// on it unchanged.
///
/// # Panics
///
/// Panics if `cores` is empty.
pub fn compose(name: &str, cores: Vec<GeneratedCircuit>) -> GeneratedCircuit {
    assert!(!cores.is_empty(), "cannot compose zero cores");
    let mut ports: Vec<Port> = Vec::new();
    let mut items: Vec<Item> = Vec::new();
    let mut hooks: Vec<PayloadHook> = Vec::new();
    let mut data_inputs: Vec<SignalRef> = Vec::new();
    let mut secrets: Vec<SignalRef> = Vec::new();
    let mut clock = None;

    for (i, core) in cores.into_iter().enumerate() {
        let prefix = format!("u{i}_");
        let rename = |n: &str| -> String {
            if SHARED.contains(&n) {
                n.to_string()
            } else {
                format!("{prefix}{n}")
            }
        };
        for port in &core.module.ports {
            let renamed = Port { name: rename(&port.name), ..port.clone() };
            if SHARED.contains(&port.name.as_str()) {
                if !ports.iter().any(|p| p.name == port.name) {
                    ports.push(renamed);
                }
            } else {
                ports.push(renamed);
            }
        }
        for item in &core.module.items {
            items.push(rename_item(item, &|n: &str| rename(n)));
        }
        for hook in &core.hooks {
            hooks.push(PayloadHook {
                output: rename(&hook.output),
                internal: rename(&hook.internal),
                width: hook.width,
            });
        }
        for sig in &core.data_inputs {
            data_inputs.push(SignalRef::new(rename(&sig.name), sig.width));
        }
        for sig in &core.secrets {
            secrets.push(SignalRef::new(rename(&sig.name), sig.width));
        }
        if clock.is_none() {
            clock = core.clock.clone();
        }
    }

    GeneratedCircuit {
        module: Module { name: name.to_string(), ports, items },
        clock,
        hooks,
        data_inputs,
        secrets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitFamily;
    use crate::families::generate;
    use noodle_verilog::{parse, print_module};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cores(n: usize, seed: u64) -> Vec<GeneratedCircuit> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| generate(CircuitFamily::ALL[i % CircuitFamily::ALL.len()], "core", &mut rng))
            .collect()
    }

    #[test]
    fn composite_parses_and_keeps_all_logic() {
        let composite = compose("big_ip", cores(3, 1));
        let text = print_module(&composite.module);
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(parsed.modules[0].name, "big_ip");
        // Items from all three cores are present.
        assert!(composite.module.items.len() > 10);
        assert!(composite.hooks.len() >= 3);
    }

    #[test]
    fn clock_and_reset_are_shared() {
        let composite = compose("ip", cores(3, 2));
        let clk_ports = composite.module.ports.iter().filter(|p| p.name == "clk").count();
        assert_eq!(clk_ports, 1, "exactly one shared clock port");
        assert_eq!(composite.clock.as_deref(), Some("clk"));
    }

    #[test]
    fn signals_are_prefixed_without_collisions() {
        // Two ALUs would collide on every name without prefixing.
        let mut rng = StdRng::seed_from_u64(3);
        let a = generate(CircuitFamily::Alu, "a", &mut rng);
        let b = generate(CircuitFamily::Alu, "b", &mut rng);
        let composite = compose("two_alus", vec![a, b]);
        let mut names: Vec<&str> = composite.module.ports.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate port names after composition");
        assert!(composite.module.ports.iter().any(|p| p.name == "u0_y"));
        assert!(composite.module.ports.iter().any(|p| p.name == "u1_y"));
    }

    #[test]
    fn composite_supports_trojan_insertion() {
        use crate::trojan::{insert_trojan, TrojanSpec};
        let mut rng = StdRng::seed_from_u64(4);
        for spec in TrojanSpec::all() {
            let mut composite = compose("victim", cores(2, 5));
            insert_trojan(&mut composite, spec, &mut rng);
            let text = print_module(&composite.module);
            assert!(parse(&text).is_ok(), "{spec:?}\n{text}");
        }
    }

    #[test]
    fn composite_supports_decoration() {
        use crate::decorate::add_benign_decorations;
        let mut rng = StdRng::seed_from_u64(5);
        let mut composite = compose("deco", cores(3, 6));
        let before = composite.module.items.len();
        add_benign_decorations(&mut composite, 3, &mut rng);
        assert!(composite.module.items.len() > before);
        assert!(parse(&print_module(&composite.module)).is_ok());
    }

    #[test]
    #[should_panic(expected = "zero cores")]
    fn empty_composition_panics() {
        let _ = compose("empty", Vec::new());
    }
}
