//! Enforces the profiler's overhead contract: with profiling disabled,
//! every instrumented entry point (`record`, `KernelTimer`) is a no-op
//! that performs **zero heap allocations** — the same discipline the
//! audit sink (PR 2) and infer arena (PR 4) hold on their warm paths.
//!
//! Uses the crate's own [`CountingAllocator`] installed as the global
//! allocator, which doubles as an integration test of the allocator
//! itself (counters move only inside the enabled window).

use noodle_profile::{
    mem_stats, record, set_enabled, set_mem_enabled, CountingAllocator, EventKind, KernelTimer,
};

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator::new();

/// The counters and switches are process-global; the harness runs tests
/// concurrently, so each one takes this lock to keep its window clean.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn disabled_profiling_allocates_nothing() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    set_enabled(false);
    set_mem_enabled(true);
    let before = mem_stats().allocations;
    for i in 0..1_000u64 {
        record(EventKind::Gemm, i, 1, 1_000, 64);
        let _t = KernelTimer::start(EventKind::DenseFwd, 2_048, 128);
    }
    let after = mem_stats().allocations;
    set_mem_enabled(false);
    assert_eq!(after - before, 0, "disabled profiling must not touch the allocator");
}

#[test]
fn counting_allocator_tracks_real_allocations() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    set_mem_enabled(true);
    let before = mem_stats();
    let v: Vec<u8> = Vec::with_capacity(1 << 16);
    let after = mem_stats();
    drop(v);
    set_mem_enabled(false);
    assert!(after.allocations > before.allocations, "a real Vec allocation must be counted");
    assert!(after.allocated_bytes - before.allocated_bytes >= 1 << 16);
    assert!(after.peak_bytes >= 1 << 16);
}

#[test]
fn enabled_recording_after_warmup_allocates_nothing() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // First event registers the thread's ring (one-time allocation); the
    // steady-state push path must then be allocation-free.
    set_enabled(true);
    record(EventKind::Gemm, 0, 1, 10, 10);
    set_mem_enabled(true);
    let before = mem_stats().allocations;
    for i in 0..1_000u64 {
        record(EventKind::Gemm, i, 1, 1_000, 64);
    }
    let after = mem_stats().allocations;
    set_mem_enabled(false);
    set_enabled(false);
    assert_eq!(after - before, 0, "warm ring pushes must not allocate");
}
