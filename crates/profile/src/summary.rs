//! Profile summarisation: per-thread utilization, top spans by
//! self-time, and per-kernel roofline attribution.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::alloc::MemStats;
use crate::ring::{EventKind, Profile, ProfileEvent};

/// How many spans `top_spans` keeps.
const TOP_SPANS: usize = 10;

/// Per-thread rollup of a profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadSummary {
    /// Profiler-assigned thread index.
    pub tid: u32,
    /// Thread name.
    pub name: String,
    /// Events recorded by this thread.
    pub events: u64,
    /// Nanoseconds this thread spent executing pool jobs or kernels
    /// (union of intervals, so overlapping kernel-within-job events are
    /// not double counted).
    pub busy_ns: u64,
    /// `busy_ns / wall_ns` — fraction of the run this thread was working.
    pub utilization: f64,
    /// Nanoseconds spent between job submission and this thread claiming
    /// its first chunk.
    pub queue_wait_ns: u64,
    /// `queue_wait_ns / (busy_ns + queue_wait_ns)`.
    pub queue_wait_frac: f64,
    /// Events dropped because this thread's ring filled.
    pub dropped: u64,
}

/// One span aggregated across all its occurrences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanSelfTime {
    /// Span name.
    pub name: String,
    /// Number of occurrences.
    pub count: u64,
    /// Total duration minus time covered by nested spans, summed over
    /// occurrences.
    pub self_ns: u64,
    /// Total duration summed over occurrences.
    pub total_ns: u64,
}

/// One kernel kind aggregated across all calls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSummary {
    /// Kernel label (e.g. `gemm`, `im2col`, `conv_fwd`).
    pub name: String,
    /// Number of recorded calls.
    pub calls: u64,
    /// Total nanoseconds across calls.
    pub total_ns: u64,
    /// Total floating-point operations attributed.
    pub flops: u64,
    /// Achieved GFLOP/s: `flops / total_ns` (FLOPs per nanosecond is
    /// numerically GFLOP/s).
    pub gflops: f64,
    /// Total bytes touched, when recorded.
    pub bytes: u64,
    /// `gflops / peak_gflops` — the roofline ratio against the measured
    /// single-core GEMM peak. Zero when no peak was measured.
    pub peak_frac: f64,
}

/// The summary embedded in a `RunReport` and rendered by
/// `noodle profile`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileSummary {
    /// Summary format version.
    pub schema_version: u32,
    /// Observed wall clock of the profiled run, nanoseconds.
    pub wall_ns: u64,
    /// Measured single-core GEMM peak in GFLOP/s (roofline ceiling).
    pub peak_gflops: f64,
    /// Total events across all threads.
    pub total_events: u64,
    /// Total events dropped to full rings.
    pub dropped_events: u64,
    /// Per-thread rollups, ordered by tid.
    pub threads: Vec<ThreadSummary>,
    /// Top spans by self-time, descending.
    pub top_spans: Vec<SpanSelfTime>,
    /// Per-kernel roofline attribution, by total time descending.
    pub kernels: Vec<KernelSummary>,
    /// Allocator counters when `--profile-mem` was on.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub mem: Option<MemStats>,
}

/// Current [`ProfileSummary::schema_version`].
pub const SUMMARY_SCHEMA_VERSION: u32 = 1;

/// Union length of a set of intervals (busy time without double counting
/// kernels nested inside pool jobs).
fn interval_coverage(mut spans: Vec<(u64, u64)>) -> u64 {
    spans.sort_unstable();
    let mut covered = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (start, end) in spans {
        match cur {
            Some((s, e)) if start <= e => cur = Some((s, e.max(end))),
            Some((s, e)) => {
                covered += e - s;
                cur = Some((start, end));
            }
            None => cur = Some((start, end)),
        }
    }
    if let Some((s, e)) = cur {
        covered += e - s;
    }
    covered
}

/// Computes span self-time for one thread's events: each span's duration
/// minus the durations of spans directly nested inside it.
fn span_self_times(events: &[ProfileEvent], acc: &mut BTreeMap<String, SpanSelfTime>) {
    let mut spans: Vec<&ProfileEvent> =
        events.iter().filter(|e| e.kind == EventKind::Span).collect();
    // Parents sort before children: earlier start first, longer first on ties.
    spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.dur_ns.cmp(&a.dur_ns)));
    // stack of (end_ns, index into `order`) for open ancestors
    let mut self_ns: Vec<u64> = spans.iter().map(|s| s.dur_ns).collect();
    let mut stack: Vec<(u64, usize)> = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        let end = span.start_ns + span.dur_ns;
        while let Some(&(parent_end, _)) = stack.last() {
            if span.start_ns >= parent_end {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(parent_end, parent_idx)) = stack.last() {
            if end <= parent_end {
                self_ns[parent_idx] = self_ns[parent_idx].saturating_sub(span.dur_ns);
            }
        }
        stack.push((end, i));
    }
    for (span, self_t) in spans.iter().zip(self_ns) {
        let entry = acc.entry(span.name.clone()).or_insert_with(|| SpanSelfTime {
            name: span.name.clone(),
            count: 0,
            self_ns: 0,
            total_ns: 0,
        });
        entry.count += 1;
        entry.self_ns += self_t;
        entry.total_ns += span.dur_ns;
    }
}

/// Folds a drained [`Profile`] into a [`ProfileSummary`].
///
/// `peak_gflops` is the measured single-core GEMM ceiling used for the
/// roofline ratio (pass 0.0 to skip the ratio); `mem` carries allocator
/// counters when memory accounting was enabled.
pub fn summarize(profile: &Profile, peak_gflops: f64, mem: Option<MemStats>) -> ProfileSummary {
    let wall_ns = profile.wall_ns();
    let mut span_acc: BTreeMap<String, SpanSelfTime> = BTreeMap::new();
    let mut kernel_acc: BTreeMap<String, KernelSummary> = BTreeMap::new();
    let mut threads = Vec::with_capacity(profile.threads.len());

    for thread in &profile.threads {
        let busy: Vec<(u64, u64)> = thread
            .events
            .iter()
            .filter(|e| e.kind == EventKind::PoolJob || e.kind.is_kernel())
            .map(|e| (e.start_ns, e.start_ns + e.dur_ns))
            .collect();
        let busy_ns = interval_coverage(busy);
        let queue_wait_ns: u64 =
            thread.events.iter().filter(|e| e.kind == EventKind::QueueWait).map(|e| e.dur_ns).sum();
        threads.push(ThreadSummary {
            tid: thread.tid,
            name: thread.name.clone(),
            events: thread.events.len() as u64,
            busy_ns,
            utilization: if wall_ns > 0 { busy_ns as f64 / wall_ns as f64 } else { 0.0 },
            queue_wait_ns,
            queue_wait_frac: if busy_ns + queue_wait_ns > 0 {
                queue_wait_ns as f64 / (busy_ns + queue_wait_ns) as f64
            } else {
                0.0
            },
            dropped: thread.dropped,
        });

        span_self_times(&thread.events, &mut span_acc);

        for e in thread.events.iter().filter(|e| e.kind.is_kernel()) {
            let entry = kernel_acc.entry(e.name.clone()).or_insert_with(|| KernelSummary {
                name: e.name.clone(),
                calls: 0,
                total_ns: 0,
                flops: 0,
                gflops: 0.0,
                bytes: 0,
                peak_frac: 0.0,
            });
            entry.calls += 1;
            entry.total_ns += e.dur_ns;
            entry.flops += e.flops;
            entry.bytes += e.bytes;
        }
    }

    let mut top_spans: Vec<SpanSelfTime> = span_acc.into_values().collect();
    top_spans.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
    top_spans.truncate(TOP_SPANS);

    let mut kernels: Vec<KernelSummary> = kernel_acc.into_values().collect();
    for k in &mut kernels {
        if k.total_ns > 0 {
            k.gflops = k.flops as f64 / k.total_ns as f64;
        }
        if peak_gflops > 0.0 {
            k.peak_frac = k.gflops / peak_gflops;
        }
    }
    kernels.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));

    ProfileSummary {
        schema_version: SUMMARY_SCHEMA_VERSION,
        wall_ns,
        peak_gflops,
        total_events: profile.total_events(),
        dropped_events: profile.total_dropped(),
        threads,
        top_spans,
        kernels,
        mem,
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders a [`ProfileSummary`] as the human-readable table printed by
/// `noodle profile` and after `--profile` runs.
pub fn render_summary(summary: &ProfileSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "profile: wall {} ms, {} events ({} dropped), peak {:.2} GFLOP/s single-core gemm\n",
        fmt_ms(summary.wall_ns),
        summary.total_events,
        summary.dropped_events,
        summary.peak_gflops
    ));
    if let Some(mem) = &summary.mem {
        out.push_str(&format!(
            "memory: {} allocations, {:.1} MiB allocated, {:.1} MiB peak, {:.1} MiB live\n",
            mem.allocations,
            mem.allocated_bytes as f64 / (1 << 20) as f64,
            mem.peak_bytes as f64 / (1 << 20) as f64,
            mem.live_bytes as f64 / (1 << 20) as f64,
        ));
    }

    out.push_str("\nthreads:\n");
    out.push_str(&format!(
        "  {:<22} {:>10} {:>8} {:>10} {:>8} {:>7}\n",
        "name", "busy_ms", "util", "wait_ms", "wait%", "events"
    ));
    for t in &summary.threads {
        out.push_str(&format!(
            "  {:<22} {:>10} {:>7.1}% {:>10} {:>7.1}% {:>7}\n",
            t.name,
            fmt_ms(t.busy_ns),
            t.utilization * 100.0,
            fmt_ms(t.queue_wait_ns),
            t.queue_wait_frac * 100.0,
            t.events
        ));
    }

    if !summary.top_spans.is_empty() {
        out.push_str("\ntop spans by self-time:\n");
        out.push_str(&format!(
            "  {:<32} {:>6} {:>10} {:>10}\n",
            "span", "count", "self_ms", "total_ms"
        ));
        for s in &summary.top_spans {
            out.push_str(&format!(
                "  {:<32} {:>6} {:>10} {:>10}\n",
                s.name,
                s.count,
                fmt_ms(s.self_ns),
                fmt_ms(s.total_ns)
            ));
        }
    }

    if !summary.kernels.is_empty() {
        out.push_str("\nkernels (roofline vs single-core gemm peak):\n");
        out.push_str(&format!(
            "  {:<12} {:>8} {:>10} {:>12} {:>10} {:>7}\n",
            "kernel", "calls", "total_ms", "gflop", "gflop/s", "peak%"
        ));
        for k in &summary.kernels {
            out.push_str(&format!(
                "  {:<12} {:>8} {:>10} {:>12.3} {:>10.2} {:>6.1}%\n",
                k.name,
                k.calls,
                fmt_ms(k.total_ns),
                k.flops as f64 / 1e9,
                k.gflops,
                k.peak_frac * 100.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::ThreadProfile;

    fn ev(kind: EventKind, name: &str, start: u64, dur: u64, flops: u64) -> ProfileEvent {
        ProfileEvent {
            kind,
            name: name.into(),
            start_ns: start,
            dur_ns: dur,
            flops,
            bytes: 0,
            trace_id: 0,
        }
    }

    #[test]
    fn interval_coverage_merges_overlaps() {
        assert_eq!(interval_coverage(vec![]), 0);
        assert_eq!(interval_coverage(vec![(0, 10), (5, 15), (20, 30)]), 25);
        assert_eq!(interval_coverage(vec![(0, 100), (10, 20)]), 100);
    }

    #[test]
    fn self_time_subtracts_nested_spans() {
        let events = vec![
            ev(EventKind::Span, "outer", 0, 100, 0),
            ev(EventKind::Span, "inner", 10, 30, 0),
            ev(EventKind::Span, "inner", 50, 20, 0),
        ];
        let mut acc = BTreeMap::new();
        span_self_times(&events, &mut acc);
        assert_eq!(acc["outer"].self_ns, 50);
        assert_eq!(acc["outer"].total_ns, 100);
        assert_eq!(acc["inner"].self_ns, 50);
        assert_eq!(acc["inner"].count, 2);
    }

    #[test]
    fn summarize_rolls_up_threads_and_kernels() {
        let profile = Profile {
            threads: vec![
                ThreadProfile {
                    tid: 0,
                    name: "main".into(),
                    dropped: 0,
                    events: vec![
                        ev(EventKind::Span, "fit", 0, 1000, 0),
                        ev(EventKind::Gemm, "gemm", 100, 200, 400_000),
                    ],
                },
                ThreadProfile {
                    tid: 1,
                    name: "noodle-compute-0".into(),
                    dropped: 2,
                    events: vec![
                        ev(EventKind::QueueWait, "queue_wait", 90, 10, 0),
                        ev(EventKind::PoolJob, "pool_job", 100, 300, 3),
                        ev(EventKind::Gemm, "gemm", 100, 100, 200_000),
                    ],
                },
            ],
        };
        let s = summarize(&profile, 10.0, None);
        assert_eq!(s.wall_ns, 1000);
        assert_eq!(s.total_events, 5);
        assert_eq!(s.dropped_events, 2);
        // worker busy = union of pool job + nested gemm = 300 ns
        assert_eq!(s.threads[1].busy_ns, 300);
        assert_eq!(s.threads[1].queue_wait_ns, 10);
        let gemm = s.kernels.iter().find(|k| k.name == "gemm").unwrap();
        assert_eq!(gemm.calls, 2);
        assert_eq!(gemm.flops, 600_000);
        // 600k flops / 300 ns = 2000 flops/ns = 2000 GFLOP/s
        assert!((gemm.gflops - 2000.0).abs() < 1e-9);
        assert!((gemm.peak_frac - 200.0).abs() < 1e-9);
        assert_eq!(s.top_spans[0].name, "fit");
        // render shouldn't panic and should mention the kernel table
        let text = render_summary(&s);
        assert!(text.contains("gemm"));
        assert!(text.contains("threads:"));
    }

    #[test]
    fn summary_serde_round_trips() {
        let s = summarize(&Profile::default(), 0.0, Some(MemStats::default()));
        let json = serde_json::to_string(&s).unwrap();
        let back: ProfileSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
