//! Chrome Trace Event Format export and read-back.
//!
//! [`write_chrome_trace`] renders a drained [`Profile`] as JSON loadable
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): each
//! thread becomes one timeline row (named via a `thread_name` metadata
//! event), every event is a `"ph": "X"` complete event with microsecond
//! timestamps, and run-level metadata (command, GEMM peak, memory stats)
//! rides in `otherData`. [`read_chrome_trace`] inverts the mapping so
//! `noodle profile <trace.json>` can re-summarise a saved trace offline.

use serde_json::{json, Map, Value};

use crate::alloc::MemStats;
use crate::ring::{EventKind, Profile, ProfileEvent, ThreadProfile};

/// Run-level metadata embedded in the trace's `otherData` block.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceMeta {
    /// `noodle` version that produced the trace.
    #[serde(default)]
    pub tool_version: String,
    /// The CLI invocation being profiled.
    #[serde(default)]
    pub command: String,
    /// Measured single-core GEMM peak, GFLOP/s.
    #[serde(default)]
    pub peak_gflops: f64,
    /// Observed wall clock, nanoseconds.
    #[serde(default)]
    pub wall_ns: u64,
    /// Allocator counters when `--profile-mem` was on.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub mem: Option<MemStats>,
}

/// Why a trace file could not be read back.
#[derive(Debug)]
pub enum TraceError {
    /// The file was not valid JSON.
    Json(serde_json::Error),
    /// The JSON was missing the Chrome-trace structure we expect.
    Format(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Json(e) => write!(f, "trace is not valid JSON: {e}"),
            TraceError::Format(msg) => write!(f, "trace format error: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Json(e) => Some(e),
            TraceError::Format(_) => None,
        }
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Json(e)
    }
}

/// Serialises a profile as Chrome Trace Event Format JSON.
pub fn write_chrome_trace(profile: &Profile, meta: &TraceMeta) -> String {
    let mut events: Vec<Value> = Vec::new();
    for thread in &profile.threads {
        events.push(json!({
            "ph": "M",
            "name": "thread_name",
            "pid": 1,
            "tid": thread.tid,
            "args": { "name": thread.name }
        }));
        for e in &thread.events {
            let mut args = json!({ "flops": e.flops, "bytes": e.bytes });
            if e.trace_id != 0 {
                // 16-hex-digit form: the same string the audit record and
                // /debug/trace/<id> use, so one grep joins all three.
                args["trace"] = Value::String(noodle_trace::format_trace_id(e.trace_id));
            }
            events.push(json!({
                "ph": "X",
                "name": e.name,
                "cat": e.kind.category(),
                "pid": 1,
                "tid": thread.tid,
                "ts": e.start_ns as f64 / 1000.0,
                "dur": e.dur_ns as f64 / 1000.0,
                "args": args
            }));
        }
    }
    let doc = json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": meta,
    });
    serde_json::to_string(&doc).expect("chrome trace serialization cannot fail")
}

fn as_u64_ns(obj: &Map<String, Value>, key: &str) -> u64 {
    // ts/dur are microseconds, possibly fractional; convert back to ns.
    (obj.get(key).and_then(Value::as_f64).unwrap_or(0.0) * 1000.0).round() as u64
}

/// Parses a Chrome-trace JSON string back into a [`Profile`] and its
/// [`TraceMeta`]. Only events written by [`write_chrome_trace`] are
/// required; unknown events are skipped rather than rejected.
pub fn read_chrome_trace(text: &str) -> Result<(Profile, TraceMeta), TraceError> {
    let doc: Value = serde_json::from_str(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| TraceError::Format("missing traceEvents array".into()))?;
    let meta: TraceMeta =
        doc.get("otherData").cloned().map(serde_json::from_value).transpose()?.unwrap_or_default();

    let mut threads: std::collections::BTreeMap<u32, ThreadProfile> =
        std::collections::BTreeMap::new();
    for raw in events {
        let Some(obj) = raw.as_object() else { continue };
        let tid = obj.get("tid").and_then(Value::as_u64).unwrap_or(0) as u32;
        let ph = obj.get("ph").and_then(Value::as_str).unwrap_or("");
        let name = obj.get("name").and_then(Value::as_str).unwrap_or("").to_owned();
        let thread = threads.entry(tid).or_insert_with(|| ThreadProfile {
            tid,
            name: format!("tid-{tid}"),
            dropped: 0,
            events: Vec::new(),
        });
        match ph {
            "M" if name == "thread_name" => {
                if let Some(n) = obj.get("args").and_then(|a| a.get("name")).and_then(Value::as_str)
                {
                    thread.name = n.to_owned();
                }
            }
            "X" => {
                let cat = obj.get("cat").and_then(Value::as_str).unwrap_or("");
                let kind = if cat == "span" {
                    EventKind::Span
                } else {
                    EventKind::from_label(&name).unwrap_or(EventKind::Span)
                };
                let args = obj.get("args").and_then(Value::as_object);
                thread.events.push(ProfileEvent {
                    kind,
                    name,
                    start_ns: as_u64_ns(obj, "ts"),
                    dur_ns: as_u64_ns(obj, "dur"),
                    flops: args.and_then(|a| a.get("flops")).and_then(Value::as_u64).unwrap_or(0),
                    bytes: args.and_then(|a| a.get("bytes")).and_then(Value::as_u64).unwrap_or(0),
                    trace_id: args
                        .and_then(|a| a.get("trace"))
                        .and_then(Value::as_str)
                        .and_then(noodle_trace::parse_trace_id)
                        .unwrap_or(0),
                });
            }
            _ => {}
        }
    }
    Ok((Profile { threads: threads.into_values().collect() }, meta))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_round_trips() {
        let profile = Profile {
            threads: vec![ThreadProfile {
                tid: 0,
                name: "main".into(),
                dropped: 0,
                events: vec![
                    ProfileEvent {
                        kind: EventKind::Span,
                        name: "fit".into(),
                        start_ns: 0,
                        dur_ns: 5_000,
                        flops: 0,
                        bytes: 0,
                        trace_id: 0,
                    },
                    ProfileEvent {
                        kind: EventKind::Gemm,
                        name: "gemm".into(),
                        start_ns: 1_000,
                        dur_ns: 2_000,
                        flops: 123_456,
                        bytes: 789,
                        trace_id: 0xdead_beef_cafe_f00d,
                    },
                ],
            }],
        };
        let meta = TraceMeta {
            tool_version: "0.1.0".into(),
            command: "fit --fast".into(),
            peak_gflops: 12.5,
            wall_ns: 5_000,
            mem: None,
        };
        let text = write_chrome_trace(&profile, &meta);
        let (back, back_meta) = read_chrome_trace(&text).unwrap();
        assert_eq!(back.threads.len(), 1);
        assert_eq!(back.threads[0].name, "main");
        assert_eq!(back.threads[0].events, profile.threads[0].events);
        assert_eq!(back_meta, meta);
    }

    #[test]
    fn invalid_json_is_rejected() {
        assert!(matches!(read_chrome_trace("{nope"), Err(TraceError::Json(_))));
        assert!(matches!(read_chrome_trace("{}"), Err(TraceError::Format(_))));
    }

    #[test]
    fn trace_contains_thread_metadata_and_categories() {
        let profile = Profile {
            threads: vec![ThreadProfile {
                tid: 3,
                name: "noodle-compute-2".into(),
                dropped: 0,
                events: vec![ProfileEvent {
                    kind: EventKind::PoolJob,
                    name: "pool_job".into(),
                    start_ns: 10,
                    dur_ns: 20,
                    flops: 4,
                    bytes: 0,
                    trace_id: 0,
                }],
            }],
        };
        let text = write_chrome_trace(&profile, &TraceMeta::default());
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert!(events.iter().any(|e| e["ph"] == "M"
            && e["name"] == "thread_name"
            && e["args"]["name"] == "noodle-compute-2"));
        assert!(events.iter().any(|e| e["ph"] == "X" && e["cat"] == "pool"));
    }
}
