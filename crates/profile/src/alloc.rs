//! Global counting allocator for allocation/peak-memory accounting.
//!
//! [`CountingAllocator`] wraps the system allocator. Accounting is **off
//! by default**: until [`set_mem_enabled`]`(true)` each call forwards to
//! the system allocator after a single relaxed atomic load, so installing
//! it as the `#[global_allocator]` costs nothing measurable. When enabled
//! it tracks allocation count, total bytes allocated, live bytes and the
//! peak live footprint.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

static MEM_ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the counting allocator's totals since it was enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Number of allocation calls (allocs + reallocs).
    pub allocations: u64,
    /// Total bytes requested across all allocations.
    pub allocated_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
    /// Bytes still live at snapshot time.
    pub live_bytes: u64,
}

/// Enables or disables memory accounting. Enabling resets the counters so
/// stats cover exactly the enabled window.
pub fn set_mem_enabled(on: bool) {
    if on {
        ALLOCS.store(0, Ordering::Relaxed);
        ALLOC_BYTES.store(0, Ordering::Relaxed);
        CURRENT.store(0, Ordering::Relaxed);
        PEAK.store(0, Ordering::Relaxed);
    }
    MEM_ENABLED.store(on, Ordering::Relaxed);
}

/// Snapshots the current counters.
pub fn mem_stats() -> MemStats {
    MemStats {
        allocations: ALLOCS.load(Ordering::Relaxed),
        allocated_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
        live_bytes: CURRENT.load(Ordering::Relaxed),
    }
}

fn count_alloc(size: u64) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size, Ordering::Relaxed);
    let live = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // Monotonic max; races only ever under-report by one in-flight update.
    PEAK.fetch_max(live, Ordering::Relaxed);
}

fn count_dealloc(size: u64) {
    // Saturating: frees of blocks allocated before enabling must not
    // underflow the live counter.
    let _ = CURRENT
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| Some(cur.saturating_sub(size)));
}

/// A `#[global_allocator]`-compatible wrapper around [`System`] that
/// counts allocations when enabled via [`set_mem_enabled`].
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: noodle_profile::CountingAllocator = noodle_profile::CountingAllocator::new();
/// ```
pub struct CountingAllocator;

impl CountingAllocator {
    /// Creates the allocator (const, so it can be a static initializer).
    pub const fn new() -> Self {
        CountingAllocator
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: every method forwards to `System` with the caller's layout
// unchanged; the counters are side effects only.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() && MEM_ENABLED.load(Ordering::Relaxed) {
            count_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        if MEM_ENABLED.load(Ordering::Relaxed) {
            count_dealloc(layout.size() as u64);
        }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() && MEM_ENABLED.load(Ordering::Relaxed) {
            count_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() && MEM_ENABLED.load(Ordering::Relaxed) {
            count_dealloc(layout.size() as u64);
            count_alloc(new_size as u64);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_the_enabled_window() {
        // No global allocator installed in unit tests — drive the
        // counters directly to validate the arithmetic.
        set_mem_enabled(true);
        count_alloc(100);
        count_alloc(50);
        count_dealloc(100);
        let s = mem_stats();
        assert_eq!(s.allocations, 2);
        assert_eq!(s.allocated_bytes, 150);
        assert_eq!(s.peak_bytes, 150);
        assert_eq!(s.live_bytes, 50);
        // Freeing a pre-enable block must saturate, not underflow.
        count_dealloc(10_000);
        assert_eq!(mem_stats().live_bytes, 0);
        set_mem_enabled(false);
    }
}
