//! Lock-free per-thread event rings and the drained profile model.
//!
//! Each recording thread owns one [`ThreadRing`]: a fixed-capacity slot
//! array plus a monotonically increasing head index. Only the owning
//! thread ever writes (`head` relaxed load → slot write → `head` release
//! store), so pushes are wait-free and allocation-free; a drainer
//! acquire-loads `head` and reads the slots below it, which is the
//! classic single-producer snapshot and never observes a partially
//! written event. When the ring fills, further events are counted as
//! dropped rather than blocking the hot path.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use serde::{Deserialize, Serialize};

use crate::{enabled, now_ns};

/// Default events retained per thread (~14 MiB at 56 bytes/event),
/// overridable via `NOODLE_PROFILE_CAPACITY`.
const DEFAULT_CAPACITY: usize = 1 << 18;

/// What one event measures. Kernel kinds carry FLOP/byte payloads; `Span`
/// events mirror the telemetry span tree onto the profiler timeline;
/// `QueueWait`/`PoolJob` come from the compute pool's dispatch path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// A closed telemetry span (name carried separately).
    Span,
    /// Time between a parallel region's submission and a worker claiming
    /// its first chunk of it.
    QueueWait,
    /// One thread's execution share of one parallel region (`flops` holds
    /// the number of chunks the thread ran).
    PoolJob,
    /// Cache-blocked `a @ b` GEMM.
    Gemm,
    /// `a @ b^T` GEMM.
    GemmBt,
    /// `a^T @ b` GEMM.
    GemmAt,
    /// Int8 `a @ b^T` GEMM with i32 accumulation (quantized serving).
    GemmI8,
    /// im2col patch unrolling (1-D or 2-D).
    Im2col,
    /// col2im gradient scatter (1-D or 2-D).
    Col2im,
    /// Convolution layer forward (train or infer path, 1-D or 2-D).
    ConvFwd,
    /// Convolution layer backward.
    ConvBwd,
    /// Dense layer forward (train or infer path).
    DenseFwd,
    /// Dense layer backward.
    DenseBwd,
    /// One micro-batched inference pass through the serving engine.
    BatchInfer,
}

impl EventKind {
    /// Stable display/interchange label, also used as the Chrome-trace
    /// event name for non-span events.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::QueueWait => "queue_wait",
            EventKind::PoolJob => "pool_job",
            EventKind::Gemm => "gemm",
            EventKind::GemmBt => "gemm_bt",
            EventKind::GemmAt => "gemm_at",
            EventKind::GemmI8 => "gemm_i8",
            EventKind::Im2col => "im2col",
            EventKind::Col2im => "col2im",
            EventKind::ConvFwd => "conv_fwd",
            EventKind::ConvBwd => "conv_bwd",
            EventKind::DenseFwd => "dense_fwd",
            EventKind::DenseBwd => "dense_bwd",
            EventKind::BatchInfer => "batch_infer",
        }
    }

    /// Chrome-trace category: groups the timeline legend and lets the
    /// offline reader recover the kind.
    pub fn category(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::QueueWait | EventKind::PoolJob => "pool",
            _ => "kernel",
        }
    }

    /// Inverse of [`EventKind::label`], for trace read-back.
    pub fn from_label(label: &str) -> Option<Self> {
        Some(match label {
            "span" => EventKind::Span,
            "queue_wait" => EventKind::QueueWait,
            "pool_job" => EventKind::PoolJob,
            "gemm" => EventKind::Gemm,
            "gemm_bt" => EventKind::GemmBt,
            "gemm_at" => EventKind::GemmAt,
            "gemm_i8" => EventKind::GemmI8,
            "im2col" => EventKind::Im2col,
            "col2im" => EventKind::Col2im,
            "conv_fwd" => EventKind::ConvFwd,
            "conv_bwd" => EventKind::ConvBwd,
            "dense_fwd" => EventKind::DenseFwd,
            "dense_bwd" => EventKind::DenseBwd,
            "batch_infer" => EventKind::BatchInfer,
            _ => return None,
        })
    }

    /// Whether this kind carries FLOP/byte payloads a roofline summary
    /// should attribute.
    pub fn is_kernel(self) -> bool {
        !matches!(self, EventKind::Span | EventKind::QueueWait | EventKind::PoolJob)
    }
}

/// The fixed-size record pushed into a ring: one timed interval plus two
/// 64-bit payloads (FLOPs and bytes touched for kernels; chunk count for
/// pool jobs). Span names are interned to a `u32` so the record stays
/// `Copy` and the push path never allocates.
#[derive(Clone, Copy)]
struct Event {
    kind: EventKind,
    name: u32,
    start_ns: u64,
    dur_ns: u64,
    flops: u64,
    bytes: u64,
    /// Owning request's trace id (0 = no ambient context), captured from
    /// `noodle_trace::current()` at record time.
    trace: u64,
}

const EMPTY_EVENT: Event =
    Event { kind: EventKind::Span, name: 0, start_ns: 0, dur_ns: 0, flops: 0, bytes: 0, trace: 0 };

/// The ambient trace id to stamp on an event being recorded right now.
#[inline]
fn current_trace() -> u64 {
    noodle_trace::current().map_or(0, |c| c.trace_id)
}

/// One thread's single-producer event ring.
struct ThreadRing {
    tid: u32,
    name: String,
    slots: Box<[UnsafeCell<Event>]>,
    /// Number of valid slots. Only the owning thread stores (release);
    /// drainers acquire-load and read strictly below it.
    head: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots below `head` are never rewritten (the head only grows), so
// a drainer that acquire-loads `head` reads fully initialized, immutable
// events; the only concurrent writer touches slots at or above `head`.
unsafe impl Sync for ThreadRing {}
unsafe impl Send for ThreadRing {}

impl ThreadRing {
    fn new(tid: u32, name: String, capacity: usize) -> Self {
        Self {
            tid,
            name,
            slots: (0..capacity).map(|_| UnsafeCell::new(EMPTY_EVENT)).collect(),
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Pushes one event. Wait-free, allocation-free; counts a drop when
    /// the ring is full. Must only be called by the owning thread.
    fn push(&self, event: Event) {
        let head = self.head.load(Ordering::Relaxed);
        if head >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: only the owning thread writes, and always at `head`,
        // which no reader inspects until the release store below.
        unsafe { *self.slots[head].get() = event };
        self.head.store(head + 1, Ordering::Release);
    }

    /// Copies out every completed event (single-producer snapshot).
    fn snapshot(&self) -> Vec<Event> {
        let n = self.head.load(Ordering::Acquire);
        // SAFETY: slots below the acquired head are fully written and
        // never mutated again.
        (0..n).map(|i| unsafe { *self.slots[i].get() }).collect()
    }
}

/// Global registry of all rings plus the span-name interner.
struct Registry {
    rings: Vec<Arc<ThreadRing>>,
    names: Vec<String>,
    by_name: std::collections::BTreeMap<String, u32>,
}

static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

fn registry() -> &'static Mutex<Registry> {
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            rings: Vec::new(),
            names: Vec::new(),
            by_name: std::collections::BTreeMap::new(),
        })
    })
}

fn ring_capacity() -> usize {
    std::env::var("NOODLE_PROFILE_CAPACITY")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(DEFAULT_CAPACITY, |n| n.max(16))
}

thread_local! {
    static RING: std::cell::OnceCell<Arc<ThreadRing>> = const { std::cell::OnceCell::new() };
}

/// Runs `f` with this thread's ring, registering one on first use (the
/// only allocating step, paid once per thread per process).
fn with_ring(f: impl FnOnce(&ThreadRing)) {
    RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{tid}"), str::to_owned);
            let ring = Arc::new(ThreadRing::new(tid, name, ring_capacity()));
            registry().lock().expect("profile registry poisoned").rings.push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

fn intern(name: &str) -> u32 {
    let mut reg = registry().lock().expect("profile registry poisoned");
    if let Some(&id) = reg.by_name.get(name) {
        return id;
    }
    let id = reg.names.len() as u32;
    reg.names.push(name.to_owned());
    reg.by_name.insert(name.to_owned(), id);
    id
}

/// Records one finished interval event on the calling thread's ring.
/// No-op (one relaxed load) when profiling is disabled.
#[inline]
pub fn record(kind: EventKind, start_ns: u64, dur_ns: u64, flops: u64, bytes: u64) {
    if !enabled() {
        return;
    }
    with_ring(|r| {
        r.push(Event { kind, name: 0, start_ns, dur_ns, flops, bytes, trace: current_trace() })
    });
}

/// Records a closed span (called by the telemetry layer's span guard).
/// The name is interned so the event itself stays fixed-size; span
/// recording may therefore allocate, which is fine — spans close at stage
/// granularity, never inside kernels.
#[inline]
pub fn record_span(name: &str, start_ns: u64, dur_ns: u64) {
    if !enabled() {
        return;
    }
    let id = intern(name);
    with_ring(|r| {
        r.push(Event {
            kind: EventKind::Span,
            name: id,
            start_ns,
            dur_ns,
            flops: 0,
            bytes: 0,
            trace: current_trace(),
        })
    });
}

/// RAII kernel timer: captures the start timestamp on construction and
/// records a kernel event on drop. Disarmed (zero work beyond one relaxed
/// load) when profiling is disabled; never allocates in either state.
#[must_use = "a kernel timer measures the scope that holds it"]
pub struct KernelTimer {
    kind: EventKind,
    flops: u64,
    bytes: u64,
    start_ns: u64,
    armed: bool,
}

impl KernelTimer {
    /// Starts timing a kernel with the given FLOP and byte payloads.
    #[inline]
    pub fn start(kind: EventKind, flops: u64, bytes: u64) -> Self {
        if !enabled() {
            return Self { kind, flops, bytes, start_ns: 0, armed: false };
        }
        Self { kind, flops, bytes, start_ns: now_ns(), armed: true }
    }
}

impl Drop for KernelTimer {
    #[inline]
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let dur = now_ns().saturating_sub(self.start_ns);
        record(self.kind, self.start_ns, dur, self.flops, self.bytes);
    }
}

/// One resolved event from a drained profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileEvent {
    /// What was measured.
    pub kind: EventKind,
    /// Display name: the span name for spans, the kind label otherwise.
    pub name: String,
    /// Start offset from the profiler epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
    /// Floating-point operations attributed to the event (kernels), or
    /// chunks executed (pool jobs).
    pub flops: u64,
    /// Bytes touched by the event, when known.
    pub bytes: u64,
    /// Trace id of the request this event belongs to (0 = none); joins
    /// the event to its audit record and telemetry spans.
    #[serde(default)]
    pub trace_id: u64,
}

/// All events recorded by one thread, in push order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadProfile {
    /// Profiler-assigned thread index (0 = first recording thread,
    /// normally `main`).
    pub tid: u32,
    /// OS thread name at registration time.
    pub name: String,
    /// Events dropped because the ring filled.
    pub dropped: u64,
    /// Completed events, oldest first.
    pub events: Vec<ProfileEvent>,
}

/// A drained run profile: one timeline per recording thread.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Per-thread timelines, ordered by `tid`.
    pub threads: Vec<ThreadProfile>,
}

impl Profile {
    /// Total events across all threads.
    pub fn total_events(&self) -> u64 {
        self.threads.iter().map(|t| t.events.len() as u64).sum()
    }

    /// Total dropped events across all threads.
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// The largest event end offset, i.e. the observed wall clock of the
    /// profiled run in nanoseconds since the epoch.
    pub fn wall_ns(&self) -> u64 {
        self.threads
            .iter()
            .flat_map(|t| t.events.iter())
            .map(|e| e.start_ns + e.dur_ns)
            .max()
            .unwrap_or(0)
    }
}

/// Snapshots every thread's completed events into a [`Profile`].
///
/// Intended to run at the end of a run, after parallel work has
/// quiesced; events still being pushed concurrently are simply not yet
/// visible (the single-producer snapshot never tears). Rings are left in
/// place, so a second drain returns a superset.
pub fn drain() -> Profile {
    let reg = registry().lock().expect("profile registry poisoned");
    let mut threads: Vec<ThreadProfile> = reg
        .rings
        .iter()
        .map(|ring| ThreadProfile {
            tid: ring.tid,
            name: ring.name.clone(),
            dropped: ring.dropped.load(Ordering::Relaxed),
            events: ring
                .snapshot()
                .into_iter()
                .map(|e| ProfileEvent {
                    kind: e.kind,
                    name: match e.kind {
                        EventKind::Span => reg
                            .names
                            .get(e.name as usize)
                            .cloned()
                            .unwrap_or_else(|| "<unknown>".to_owned()),
                        kind => kind.label().to_owned(),
                    },
                    start_ns: e.start_ns,
                    dur_ns: e.dur_ns,
                    flops: e.flops,
                    bytes: e.bytes,
                    trace_id: e.trace,
                })
                .collect(),
        })
        .collect();
    threads.sort_by_key(|t| t.tid);
    Profile { threads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;

    /// The enabled switch is process-global and the harness runs tests
    /// concurrently; the toggling tests serialize on this.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        record(EventKind::Gemm, 0, 10, 100, 200);
        let _t = KernelTimer::start(EventKind::Gemm, 1, 2);
        // Nothing recorded for this thread beyond what other tests left.
        // (Can't assert emptiness globally — rings are process-wide — so
        // assert the timer is disarmed instead.)
        let t = KernelTimer::start(EventKind::Gemm, 1, 2);
        assert!(!t.armed);
    }

    #[test]
    fn events_round_trip_through_drain() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        record(EventKind::Gemm, 5, 10, 1_000, 64);
        record_span("unit.test.span", 0, 50);
        let profile = drain();
        set_enabled(false);
        let me: Vec<&ProfileEvent> = profile.threads.iter().flat_map(|t| t.events.iter()).collect();
        assert!(me.iter().any(|e| e.kind == EventKind::Gemm && e.flops == 1_000));
        assert!(me.iter().any(|e| e.kind == EventKind::Span && e.name == "unit.test.span"));
    }

    #[test]
    fn kernel_timer_records_when_enabled() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        {
            let _t = KernelTimer::start(EventKind::GemmBt, 77, 11);
        }
        let profile = drain();
        set_enabled(false);
        assert!(profile
            .threads
            .iter()
            .flat_map(|t| t.events.iter())
            .any(|e| e.kind == EventKind::GemmBt && e.flops == 77 && e.bytes == 11));
    }

    #[test]
    fn ring_counts_drops_when_full() {
        let ring = ThreadRing::new(99, "t".into(), 4);
        for i in 0..7 {
            ring.push(Event {
                kind: EventKind::Gemm,
                name: 0,
                start_ns: i,
                dur_ns: 1,
                flops: 0,
                bytes: 0,
                trace: 0,
            });
        }
        assert_eq!(ring.snapshot().len(), 4);
        assert_eq!(ring.dropped.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn events_carry_the_ambient_trace_id() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let ctx = noodle_trace::TraceContext::mint();
        {
            let _t = noodle_trace::set_current(ctx);
            record(EventKind::Im2col, 1, 2, 3, 4);
            record_span("traced.span", 1, 2);
        }
        record(EventKind::Im2col, 5, 6, 7, 8);
        let profile = drain();
        set_enabled(false);
        let events: Vec<&ProfileEvent> =
            profile.threads.iter().flat_map(|t| t.events.iter()).collect();
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::Im2col && e.flops == 3 && e.trace_id == ctx.trace_id));
        assert!(events.iter().any(|e| e.name == "traced.span" && e.trace_id == ctx.trace_id));
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::Im2col && e.flops == 7 && e.trace_id == 0));
    }

    #[test]
    fn labels_round_trip() {
        for kind in [
            EventKind::Span,
            EventKind::QueueWait,
            EventKind::PoolJob,
            EventKind::Gemm,
            EventKind::GemmBt,
            EventKind::GemmAt,
            EventKind::GemmI8,
            EventKind::Im2col,
            EventKind::Col2im,
            EventKind::ConvFwd,
            EventKind::ConvBwd,
            EventKind::DenseFwd,
            EventKind::DenseBwd,
            EventKind::BatchInfer,
        ] {
            assert_eq!(EventKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(EventKind::from_label("nope"), None);
    }
}
