//! # noodle-profile
//!
//! A per-thread execution profiler for the NOODLE pipeline:
//!
//! * **lock-free per-thread event rings** — every thread that records an
//!   event owns a single-producer ring buffer; begin/end timestamps,
//!   FLOP/byte payloads and span names are pushed with one relaxed load,
//!   one slot write and one release store (no locks, no allocation after
//!   the ring exists);
//! * **Chrome Trace Event export** — [`write_chrome_trace`] renders a
//!   drained [`Profile`] as `chrome://tracing`/Perfetto-compatible JSON,
//!   one timeline row per thread;
//! * **summaries with roofline attribution** — [`summarize`] folds the
//!   events into per-thread utilization/queue-wait, top spans by
//!   self-time and per-kernel achieved GFLOP/s against a measured
//!   single-core GEMM peak;
//! * **memory accounting** — [`CountingAllocator`] is a drop-in global
//!   allocator that (only when enabled) counts allocations, bytes and the
//!   peak live footprint.
//!
//! Profiling is **disabled by default** and every entry point is a no-op
//! costing one relaxed atomic load until [`set_enabled`]`(true)`, so the
//! instrumented kernels stay allocation-free and branch-cheap on the hot
//! path. Recording only writes timestamps and counters — it never touches
//! RNG state, chunk boundaries or accumulation order — so pipeline outputs
//! are bit-identical with profiling on or off at any thread count.
//!
//! ## Quickstart
//!
//! ```
//! use noodle_profile as profile;
//!
//! profile::set_enabled(true);
//! {
//!     let _k = profile::KernelTimer::start(profile::EventKind::Gemm, 1_000, 4_096);
//! }
//! profile::record_span("demo.stage", 0, 250_000);
//! let prof = profile::drain();
//! assert!(prof.threads.iter().any(|t| !t.events.is_empty()));
//! profile::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod alloc;
mod ring;
mod summary;
mod trace;

pub use alloc::{mem_stats, set_mem_enabled, CountingAllocator, MemStats};
pub use ring::{
    drain, record, record_span, EventKind, KernelTimer, Profile, ProfileEvent, ThreadProfile,
};
pub use summary::{
    render_summary, summarize, KernelSummary, ProfileSummary, SpanSelfTime, ThreadSummary,
};
pub use trace::{read_chrome_trace, write_chrome_trace, TraceError, TraceMeta};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether profiling is currently collecting. One relaxed atomic load —
/// this is the only cost instrumented hot paths pay when profiling is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables event collection.
///
/// Enabling pins the [`epoch`] so every event shares one timeline origin.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// The common time origin shared by every event (and, through the
/// telemetry layer, every span): the first instant any tracing layer was
/// touched. Delegates to `noodle-trace`, which owns the process-wide
/// epoch, so flight-recorder events share the same timeline.
pub fn epoch() -> Instant {
    noodle_trace::epoch()
}

/// Nanoseconds since the [`epoch`]. Monotonic; used for every event
/// timestamp so traces from one run share a single timeline.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}
