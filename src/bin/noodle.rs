//! The `noodle` command-line tool: train a detector, persist it, and screen
//! Verilog files with calibrated uncertainty.
//!
//! ```text
//! noodle gen-corpus <dir> [--tf 28] [--ti 12] [--seed N]   write a synthetic corpus as .v files
//! noodle train <model.json> [--corpus-seed N] [--fast]     fit on a generated corpus and save
//! noodle detect <model.json> <file.v>...                   classify Verilog files
//! noodle inspect <file.v>                                  print both modality feature vectors
//! ```
//!
//! The tool is deliberately dependency-free (hand-rolled argument parsing)
//! so the workspace's only runtime dependencies stay `rand` + `serde`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use noodle::bench_gen::{corpus_stats, generate_corpus, CorpusConfig};
use noodle::{
    extract_modalities, FusionStrategy, MultimodalDataset, NoodleConfig, NoodleDetector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen-corpus") => cmd_gen_corpus(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `noodle help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "noodle — uncertainty-aware hardware Trojan detection\n\n\
         USAGE:\n  \
         noodle gen-corpus <dir> [--tf N] [--ti N] [--seed N]\n  \
         noodle train <model.json> [--corpus-seed N] [--fast]\n  \
         noodle detect <model.json> <file.v>...\n  \
         noodle inspect <file.v>\n"
    );
}

/// Positional arguments plus `(name, value)` flag pairs.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Parses `--flag value` pairs from an argument list, returning leftover
/// positional arguments.
fn parse_flags(args: &[String]) -> Result<ParsedArgs<'_>, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if name == "fast" {
                flags.push((name, "true"));
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.push((name, value.as_str()));
                i += 2;
            }
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn flag_value<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags.iter().rev().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

fn parse_num<T: std::str::FromStr>(flags: &[(&str, &str)], name: &str, default: T) -> Result<T, String> {
    match flag_value(flags, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name} expects a number, got `{v}`")),
    }
}

fn cmd_gen_corpus(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let [dir] = positional.as_slice() else {
        return Err("usage: noodle gen-corpus <dir> [--tf N] [--ti N] [--seed N]".into());
    };
    let config = CorpusConfig {
        trojan_free: parse_num(&flags, "tf", 28)?,
        trojan_infected: parse_num(&flags, "ti", 12)?,
        seed: parse_num(&flags, "seed", CorpusConfig::default().seed)?,
    };
    let corpus = generate_corpus(&config);
    let dir = PathBuf::from(dir);
    fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    for bench in &corpus {
        let path = dir.join(format!("{}.v", bench.name));
        fs::write(&path, &bench.source)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    let stats = corpus_stats(&corpus);
    println!(
        "wrote {} designs to {} ({} Trojan-free, {} Trojan-infected, mean {:.0} lines)",
        stats.total,
        dir.display(),
        stats.trojan_free,
        stats.trojan_infected,
        stats.mean_lines
    );
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let [model_path] = positional.as_slice() else {
        return Err("usage: noodle train <model.json> [--corpus-seed N] [--fast]".into());
    };
    let corpus_seed = parse_num(&flags, "corpus-seed", CorpusConfig::default().seed)?;
    let corpus = generate_corpus(&CorpusConfig { seed: corpus_seed, ..CorpusConfig::default() });
    let dataset = MultimodalDataset::from_benchmarks(&corpus).map_err(|e| e.to_string())?;
    let config = if flag_value(&flags, "fast").is_some() {
        NoodleConfig::fast()
    } else {
        NoodleConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(parse_num(&flags, "seed", 42)?);
    eprintln!("training on {} designs (this runs the full pipeline)...", dataset.len());
    let detector = NoodleDetector::fit(&dataset, &config, &mut rng).map_err(|e| e.to_string())?;
    let eval = detector.evaluation();
    for strategy in FusionStrategy::ALL {
        eprintln!("  {:<45} Brier {:.4}", strategy.label(), eval.brier_of(strategy));
    }
    eprintln!("winner: {:?}", detector.winner());
    let json = detector.to_json().map_err(|e| e.to_string())?;
    fs::write(model_path, json).map_err(|e| format!("cannot write {model_path}: {e}"))?;
    println!("model saved to {model_path}");
    Ok(())
}

fn cmd_detect(args: &[String]) -> Result<(), String> {
    let (positional, _) = parse_flags(args)?;
    let [model_path, files @ ..] = positional.as_slice() else {
        return Err("usage: noodle detect <model.json> <file.v>...".into());
    };
    if files.is_empty() {
        return Err("no Verilog files given".into());
    }
    let json = fs::read_to_string(model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let mut detector = NoodleDetector::from_json(&json)
        .map_err(|e| format!("{model_path} is not a valid model: {e}"))?;
    println!(
        "{:<32} {:<9} {:>7} {:>12} {:>11}  region",
        "file", "verdict", "p(TI)", "credibility", "confidence"
    );
    for file in files {
        let source = fs::read_to_string(Path::new(file))
            .map_err(|e| format!("cannot read {file}: {e}"))?;
        let verdict = detector.detect(&source).map_err(|e| format!("{file}: {e}"))?;
        let region = match verdict.region.as_slice() {
            [] => "{} (anomalous)".to_string(),
            [0] => "{TF}".to_string(),
            [1] => "{TI}".to_string(),
            _ => "{TF, TI} (uncertain)".to_string(),
        };
        println!(
            "{:<32} {:<9} {:>7.3} {:>12.3} {:>11.3}  {region}",
            file,
            if verdict.infected { "INFECTED" } else { "clean" },
            verdict.probability_infected,
            verdict.credibility,
            verdict.confidence,
        );
    }
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let (positional, _) = parse_flags(args)?;
    let [file] = positional.as_slice() else {
        return Err("usage: noodle inspect <file.v>".into());
    };
    let source =
        fs::read_to_string(Path::new(file)).map_err(|e| format!("cannot read {file}: {e}"))?;
    let (graph, tabular) = extract_modalities(&source).map_err(|e| e.to_string())?;
    println!("tabular features ({}):", tabular.len());
    for (name, value) in noodle::tabular::FEATURE_NAMES.iter().zip(&tabular) {
        println!("  {name:<22} {value}");
    }
    let nonzero = graph.iter().filter(|&&v| v > 0.0).count();
    println!("\ngraph image: {} cells, {nonzero} non-zero", graph.len());
    Ok(())
}
