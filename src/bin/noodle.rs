//! The `noodle` command-line tool: train a detector, persist it, and screen
//! Verilog files with calibrated uncertainty.
//!
//! ```text
//! noodle gen-corpus <dir> [--tf 28] [--ti 12] [--seed N]   write a synthetic corpus as .v files
//! noodle train <model.json> [--corpus-seed N] [--fast]     fit on a generated corpus and save
//! noodle detect <model.json> <file.v>... [--audit <log>]   classify Verilog files
//!               [--batch N] [--cache-dir <dir>]            (batched engine + feature cache)
//!               [--audit-rotate-bytes N] [--audit-keep K]  (size-rotated audit segments)
//! noodle serve <model.json> [--addr H:P] [--batch N]       long-running detection daemon
//!               [--batch-deadline-ms MS] [--queue-cap N]   (JSONL over TCP; SIGHUP or
//!               [--max-clients N] [--slo-p99-ms MS]        POST /reload hot-swaps the model)
//! noodle observe <audit.jsonl> [--out <report.json>]       replay an audit log through monitors
//!               [--follow [--poll-ms MS] [--idle-exit-ms MS]]  tail a growing log live
//! noodle profile <trace.json>                              render a recorded trace's summary
//! noodle inspect <file.v>                                  print both modality feature vectors
//! noodle version                                           print the workspace version
//! ```
//!
//! Every command also accepts the observability flags:
//!
//! ```text
//! --trace[=pretty|json]   stream per-stage span timings to stderr
//! --report <path>         write a RunReport JSON summary at exit
//! --profile <out.json>    record a per-thread Chrome trace + roofline summary
//! --profile-mem           also count allocations (needs --profile)
//! --quiet                 suppress progress output (errors still print)
//! --threads N             compute pool size (default: NOODLE_THREADS or all cores)
//! --observe-addr H:P      serve live /metrics, /monitor and /healthz while running
//!                         (or NOODLE_OBSERVE_ADDR; port 0 picks an ephemeral port,
//!                         echoed on stderr and recorded in the run report)
//! --observe-linger-ms N   keep the observability server up N ms after the
//!                         command finishes (so scripts can scrape /debug/*)
//! ```
//!
//! Every detect request carries a request-scoped trace id: it is stamped
//! into audit records, span records, profiler events and `/metrics`
//! exemplars, and the always-on flight recorder dumps a diagnostics
//! bundle to `results/flight-<ts>.json` whenever the live monitors
//! degrade to Alert.
//!
//! The tool is deliberately dependency-free (hand-rolled argument parsing)
//! so the workspace's only runtime dependencies stay `rand` + `serde`.

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use noodle::bench_gen::{corpus_stats, generate_corpus, CorpusConfig, CorpusStats};
use noodle::export::AdminFn;
use noodle::export::ExportServer;
use noodle::observe::{
    parse_audit_log, replay, AuditLine, AuditSink, JsonlAudit, LogFollower, MonitorConfig,
    MonitorReport, RotatingJsonlAudit, SloConfig, StreamingMonitors, TeeAudit,
};
use noodle::profile;
use noodle::serve::{signals, ModelLoader, ServeConfig, ServeController, ServeEngine};
use noodle::telemetry::{self, CorpusSummary, EvaluationSummary, RunContext, RunReport};
use noodle::{
    extract_modalities, DetectRequest, FeatureCache, FusionStrategy, MultimodalDataset,
    NoodleConfig, NoodleDetector, PipelineError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Counting allocator for `--profile-mem`: a pure pass-through to the
/// system allocator (one relaxed load per call) until the flag arms it.
#[global_allocator]
static ALLOC: profile::CountingAllocator = profile::CountingAllocator::new();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen-corpus") => cmd_gen_corpus(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("detect") => cmd_detect(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("observe") => cmd_observe(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("version" | "--version" | "-V") => {
            println!("noodle {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(CliError::msg(format!("unknown command `{other}` (try `noodle help`)"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {error}");
            let mut cause = error.source();
            while let Some(inner) = cause {
                eprintln!("  caused by: {inner}");
                cause = inner.source();
            }
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "noodle — uncertainty-aware hardware Trojan detection\n\n\
         USAGE:\n  \
         noodle gen-corpus <dir> [--tf N] [--ti N] [--seed N]\n  \
         noodle train <model.json> [--corpus-seed N] [--fast]\n  \
         noodle detect <model.json> <file.v>... [--audit <log.jsonl>]\n         \
         [--batch N] [--cache-dir <dir>] [--quantize]\n         \
         [--audit-rotate-bytes N] [--audit-keep K]\n  \
         noodle serve <model.json> [--addr H:P] [--batch N] [--batch-deadline-ms MS]\n         \
         [--queue-cap N] [--max-clients N] [--quantize] [--slo-p99-ms MS]\n         \
         [--audit <log.jsonl>] [--audit-rotate-bytes N] [--audit-keep K]\n  \
         noodle observe <audit.jsonl> [--epsilon E] [--window N] [--out <report.json>]\n         \
         [--follow [--poll-ms MS] [--idle-exit-ms MS]]\n  \
         noodle profile <trace.json>\n  \
         noodle inspect <file.v>\n  \
         noodle version\n\n\
         OBSERVABILITY (any command):\n  \
         --trace[=pretty|json]   stream per-stage timings to stderr\n  \
         --report <path>         write a RunReport JSON summary\n  \
         --profile <out.json>    record a Chrome/Perfetto trace with one row per\n                          \
         pool thread plus a kernel roofline summary\n  \
         --profile-mem           also count allocations (needs --profile)\n  \
         --quiet                 suppress progress output\n  \
         --threads N             compute pool size (results are identical\n                          \
         at every thread count; default NOODLE_THREADS or all cores)\n  \
         --no-simd               pin compute kernels to their scalar reference\n                          \
         bodies (NOODLE_SIMD=off works too); the active ISA\n                          \
         is recorded in --report and audit headers\n  \
         --observe-addr H:P      serve GET /metrics (Prometheus), /monitor (JSON) and\n                          \
         /healthz (200/503) from a background thread while the\n                          \
         command runs; NOODLE_OBSERVE_ADDR works too; port 0\n                          \
         picks an ephemeral port, echoed on stderr and\n                          \
         recorded in the --report run context\n  \
         --observe-linger-ms N   keep the observability server alive N ms after\n                          \
         the command finishes, so scripts can scrape\n                          \
         /debug/flight and /debug/trace/<id>\n\n\
         `detect` fans feature extraction over the compute pool and runs CNN\n\
         forwards in micro-batches of --batch files (default 32); verdicts are\n\
         bit-identical at every batch size. --cache-dir reuses extracted\n\
         features across runs, keyed by source content + extractor version.\n\
         --quantize serves CNN forwards from the model's int8 post-training-\n\
         quantized twins (i32 accumulation, dequantize at activation); the\n\
         model must have been trained by a build that emits the quantized\n\
         section, and the audit header records quantized=true.\n\n\
         `serve` runs a long-lived daemon: clients connect over TCP and send one\n\
         JSON request per line ({{\"design\":...,\"source\":...,[\"id\":N]}}), answered\n\
         with one JSON verdict/shed/error line each. Submissions from all\n\
         clients share a bounded fair queue (--queue-cap, round-robin across\n\
         connections) feeding the micro-batcher: a batch closes at --batch\n\
         items or --batch-deadline-ms after its first item. Overload sheds\n\
         429-style with a retry hint instead of queueing unboundedly. With\n\
         --observe-addr the same process serves /metrics,/monitor,/healthz plus\n\
         POST /reload (hot-swap the model file without dropping in-flight\n\
         requests; SIGHUP works too) and POST /drain (answer everything\n\
         accepted, then exit — SIGINT/SIGTERM work too). --slo-p99-ms sets the\n\
         p99 end-to-end latency target the SLO monitors alert on (and /healthz\n\
         flips to 503, dumping a flight bundle naming the slow trace ids).\n\n\
         `detect --audit` appends one JSON prediction record per file (plus a\n\
         header with the model's calibration baseline); `observe` replays such\n\
         a log through the coverage/Brier/drift monitor suite, and `observe\n\
         --follow` tails a growing (or size-rotated) log live, printing a line\n\
         on every monitor health transition. --audit-rotate-bytes caps each\n\
         audit segment (0 = never rotate); rotated segments get .1...K\n\
         suffixes (--audit-keep, default 8) and re-emit the header so each\n\
         replays standalone.\n\n\
         `--profile` drains per-thread event rings at exit into a Chrome Trace\n\
         Event JSON (open in chrome://tracing or ui.perfetto.dev); `noodle\n\
         profile <trace.json>` re-renders its summary offline. Profiling never\n\
         changes results: outputs are bit-identical with it on or off.\n"
    );
}

/// A CLI failure: either a plain message or a pipeline error whose full
/// `source()` chain is printed by `main`.
#[derive(Debug)]
enum CliError {
    Msg(String),
    Pipeline { context: String, source: PipelineError },
}

impl CliError {
    fn msg(message: impl Into<String>) -> Self {
        CliError::Msg(message.into())
    }

    fn pipeline(context: impl Into<String>) -> impl FnOnce(PipelineError) -> Self {
        let context = context.into();
        move |source| CliError::Pipeline { context, source }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Msg(message) => f.write_str(message),
            CliError::Pipeline { context, .. } => f.write_str(context),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Msg(_) => None,
            CliError::Pipeline { source, .. } => Some(source),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Msg(message)
    }
}

/// Flags that take no value; everything else consumes the next argument
/// (or an inline `--flag=value`).
const BOOLEAN_FLAGS: &[&str] =
    &["fast", "quiet", "trace", "profile-mem", "follow", "no-simd", "quantize"];

/// Positional arguments plus `(name, value)` flag pairs.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Parses flags from an argument list, returning leftover positional
/// arguments. Supports `--flag value`, inline `--flag=value`, and the
/// declared [`BOOLEAN_FLAGS`] which never consume the next argument
/// (`--trace` may still carry an inline value: `--trace=json`).
fn parse_flags(args: &[String]) -> Result<ParsedArgs<'_>, CliError> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            positional.push(args[i].as_str());
            i += 1;
            continue;
        };
        if let Some((name, value)) = name.split_once('=') {
            flags.push((name, value));
            i += 1;
        } else if BOOLEAN_FLAGS.contains(&name) {
            flags.push((name, "true"));
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| CliError::msg(format!("flag --{name} needs a value")))?;
            flags.push((name, value.as_str()));
            i += 2;
        }
    }
    Ok((positional, flags))
}

fn flag_value<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags.iter().rev().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

fn parse_num<T: std::str::FromStr>(
    flags: &[(&str, &str)],
    name: &str,
    default: T,
) -> Result<T, CliError> {
    match flag_value(flags, name) {
        None => Ok(default),
        Some(v) => {
            v.parse().map_err(|_| CliError::msg(format!("--{name} expects a number, got `{v}`")))
        }
    }
}

/// Observability options shared by every command: configures the global
/// telemetry and profiling layers from
/// `--trace`/`--report`/`--profile`/`--quiet` and writes the [`RunReport`]
/// and Chrome trace at the end of a run.
struct Observability {
    report: Option<PathBuf>,
    profile: Option<PathBuf>,
    profile_mem: bool,
    quiet: bool,
    /// The live monitor engine shared with the exposition server when
    /// `--observe-addr` (or `NOODLE_OBSERVE_ADDR`) is set. `detect` tees
    /// its audit stream into a clone so `/monitor` and `/healthz` track
    /// predictions in-flight.
    monitors: Option<StreamingMonitors>,
    /// The address the exposition server actually bound (port 0 resolved),
    /// surfaced in the run report's context block.
    observe_addr: Option<String>,
    /// `--observe-linger-ms`: how long to keep the exposition server up
    /// after the command finishes, so scripts can scrape `/debug/*`.
    linger_ms: u64,
    /// Set by [`Observability::finish`]: the command ran to completion.
    /// Error paths never call `finish`, so they skip the linger — a failed
    /// run should exit promptly, not hold its scrape window open.
    completed: std::cell::Cell<bool>,
    /// Keeps the exposition server alive for the duration of the command;
    /// never read, only dropped — dropping joins the accept thread.
    _export: Option<ExportServer>,
}

impl Drop for Observability {
    fn drop(&mut self) {
        // The linger runs in Drop (not `finish`) so the server outlives
        // every late write path; fields drop after this body, so the
        // accept thread is still serving while we sleep. The sleep happens
        // in small slices polling the shutdown flag, so a ctrl-c cuts the
        // window short instead of being ignored for the full duration.
        if self.linger_ms > 0 && self._export.is_some() && self.completed.get() {
            if !self.quiet {
                eprintln!(
                    "lingering {} ms before shutting down observability (ctrl-c to cut short)",
                    self.linger_ms
                );
            }
            signals::install();
            let interrupts_before = signals::shutdown_count();
            let deadline =
                std::time::Instant::now() + std::time::Duration::from_millis(self.linger_ms);
            loop {
                let now = std::time::Instant::now();
                if now >= deadline || signals::shutdown_count() > interrupts_before {
                    break;
                }
                std::thread::sleep((deadline - now).min(std::time::Duration::from_millis(50)));
            }
        }
    }
}

/// Refreshes the compute-pool gauges from live counters. Called at the
/// end of a `--report` run and before every `/metrics` scrape, so the
/// exported `compute.pool_utilization` is current mid-run rather than a
/// stale end-of-run artifact.
fn set_compute_gauges() {
    telemetry::gauge_set("compute.gflop_total", noodle::compute::flops() as f64 / 1e9);
    telemetry::gauge_set("compute.parallel_jobs", noodle::compute::jobs() as f64);
    let busy = noodle::compute::busy_ns() as f64;
    let wait = noodle::compute::queue_wait_ns() as f64;
    // Capacity = wall time since the shared epoch x pool width.
    let capacity = profile::now_ns() as f64 * noodle::compute::num_threads() as f64;
    if capacity > 0.0 {
        telemetry::gauge_set("compute.pool_utilization", busy / capacity);
    }
    if busy + wait > 0.0 {
        telemetry::gauge_set("compute.queue_wait_frac", wait / (busy + wait));
    }
}

impl Observability {
    fn from_flags(flags: &[(&str, &str)]) -> Result<Self, CliError> {
        Self::from_flags_with_admin(flags, None)
    }

    /// Like [`Observability::from_flags`], additionally wiring an admin
    /// hook into the exposition server (the serve daemon answers
    /// `POST /reload` and `POST /drain` on the metrics port this way).
    fn from_flags_with_admin(
        flags: &[(&str, &str)],
        admin: Option<AdminFn>,
    ) -> Result<Self, CliError> {
        if let Some(threads) = flag_value(flags, "threads") {
            let n: usize = threads.parse().map_err(|_| {
                CliError::msg(format!("--threads expects a positive number, got `{threads}`"))
            })?;
            if n == 0 {
                return Err(CliError::msg("--threads expects a positive number, got `0`"));
            }
            noodle::compute::set_thread_override(Some(n));
        }
        // Pin the kernels to their scalar bodies before any compute runs
        // (the NOODLE_SIMD env override is honoured by the compute crate
        // itself; the flag exists so scripts need no env plumbing).
        if flag_value(flags, "no-simd").is_some() {
            noodle::compute::set_simd_override(Some(false));
        }
        let trace = flag_value(flags, "trace");
        let report = flag_value(flags, "report").map(PathBuf::from);
        let profile_path = flag_value(flags, "profile").map(PathBuf::from);
        let profile_mem = flag_value(flags, "profile-mem").is_some();
        if profile_mem && profile_path.is_none() {
            return Err(CliError::msg("--profile-mem requires --profile <trace.json>"));
        }
        let quiet = flag_value(flags, "quiet").is_some();
        let observe_addr = flag_value(flags, "observe-addr")
            .map(str::to_string)
            .or_else(|| std::env::var("NOODLE_OBSERVE_ADDR").ok().filter(|v| !v.is_empty()));
        if trace.is_some() || report.is_some() || profile_path.is_some() || observe_addr.is_some() {
            telemetry::set_enabled(true);
        }
        if profile_path.is_some() {
            profile::set_enabled(true);
        }
        if profile_mem {
            profile::set_mem_enabled(true);
        }
        // After set_enabled: gauges set while telemetry is disabled are
        // dropped, so a `--report` run used to lose this one.
        telemetry::gauge_set("compute.threads", noodle::compute::num_threads() as f64);
        match trace {
            Some("true" | "pretty") if !quiet => {
                telemetry::set_sink(Box::new(telemetry::StderrPretty::default()));
            }
            Some("json") if !quiet => {
                telemetry::set_sink(Box::new(telemetry::JsonLines::stderr()));
            }
            Some("true" | "pretty" | "json") | None => {
                telemetry::set_sink(Box::new(telemetry::NullSink));
            }
            Some(other) => {
                return Err(CliError::msg(format!(
                    "--trace expects `pretty` or `json`, got `{other}`"
                )));
            }
        }
        let linger_ms: u64 = parse_num(flags, "observe-linger-ms", 0)?;
        let (monitors, bound_addr, export) = match observe_addr {
            None => (None, None, None),
            Some(addr) => {
                let monitors = StreamingMonitors::new(MonitorConfig::default());
                // Degrading to Alert dumps a flight bundle (recent ring
                // events + metrics + monitor verdicts) under results/.
                noodle::observe::install_alert_dump(&monitors, Path::new("results"));
                let server = ExportServer::start_with_admin(
                    &addr,
                    monitors.clone(),
                    Some(Box::new(set_compute_gauges)),
                    admin,
                )
                .map_err(|e| CliError::msg(format!("cannot bind --observe-addr {addr}: {e}")))?;
                // Always announced (port 0 resolves to an ephemeral port
                // the caller cannot know otherwise).
                eprintln!("observability endpoints at http://{}", server.addr());
                let bound = server.addr().to_string();
                (Some(monitors), Some(bound), Some(server))
            }
        };
        Ok(Self {
            report,
            profile: profile_path,
            profile_mem,
            quiet,
            monitors,
            observe_addr: bound_addr,
            linger_ms,
            completed: std::cell::Cell::new(false),
            _export: export,
        })
    }

    /// Writes the Chrome trace and run report, if requested. Call after
    /// the root span guard has been dropped so the stage tree is complete.
    fn finish(
        &self,
        command: &str,
        seed: Option<u64>,
        corpus: Option<CorpusSummary>,
        evaluation: Option<EvaluationSummary>,
    ) -> Result<(), CliError> {
        self.completed.set(true);
        // Drain the profiler first: it folds per-kernel timings into
        // telemetry histograms that the snapshot below must include.
        let profile_summary = self.write_profile()?;
        let Some(path) = &self.report else {
            return Ok(());
        };
        set_compute_gauges();
        let mut report = RunReport::from_snapshot(command, telemetry::snapshot());
        report.context = Some(RunContext {
            invocation: invocation_line(),
            seed,
            version: env!("CARGO_PKG_VERSION").to_string(),
            observe_addr: self.observe_addr.clone(),
            simd: Some(noodle::compute::active_isa().name().to_string()),
        });
        report.corpus = corpus;
        report.evaluation = evaluation;
        report.profile = profile_summary;
        report
            .write_to(path)
            .map_err(|e| CliError::msg(format!("cannot write report {}: {e}", path.display())))?;
        if !self.quiet {
            eprintln!("run report written to {}", path.display());
        }
        Ok(())
    }

    /// Drains the per-thread event rings into a Chrome trace (written
    /// through its own file handle — `--audit` may be streaming to a
    /// different file in the same invocation) and returns the roofline
    /// summary for embedding in the run report.
    fn write_profile(&self) -> Result<Option<profile::ProfileSummary>, CliError> {
        let Some(path) = &self.profile else {
            return Ok(None);
        };
        let prof = profile::drain();
        let peak = noodle::compute::gemm_peak_gflops();
        let mem = self.profile_mem.then(profile::mem_stats);
        // Fold per-kernel wall times into telemetry histograms so the run
        // report's metrics section and the trace agree.
        let bounds = telemetry::Histogram::default_bounds();
        let mut by_kernel: std::collections::BTreeMap<&str, telemetry::Histogram> =
            std::collections::BTreeMap::new();
        for thread in &prof.threads {
            for event in &thread.events {
                if event.kind.is_kernel() {
                    by_kernel
                        .entry(event.kind.label())
                        .or_insert_with(|| telemetry::Histogram::new(&bounds))
                        .record(event.dur_ns as f64 / 1e3);
                }
            }
        }
        for (name, hist) in &by_kernel {
            telemetry::merge_histogram(&format!("profile.kernel.{name}_us"), hist);
        }
        let summary = profile::summarize(&prof, peak, mem);
        let meta = profile::TraceMeta {
            tool_version: env!("CARGO_PKG_VERSION").to_string(),
            command: invocation_line(),
            peak_gflops: peak,
            wall_ns: prof.wall_ns(),
            mem,
        };
        let mut file = fs::File::create(path)
            .map_err(|e| CliError::msg(format!("cannot create trace {}: {e}", path.display())))?;
        std::io::Write::write_all(&mut file, profile::write_chrome_trace(&prof, &meta).as_bytes())
            .map_err(|e| CliError::msg(format!("cannot write trace {}: {e}", path.display())))?;
        if !self.quiet {
            eprint!("{}", profile::render_summary(&summary));
            eprintln!(
                "trace written to {} (open in chrome://tracing or ui.perfetto.dev)",
                path.display()
            );
        }
        Ok(Some(summary))
    }
}

/// The command line being run, reconstructed for the report's run-context
/// block (`noodle train model.json --fast ...`).
fn invocation_line() -> String {
    let mut parts = vec!["noodle".to_string()];
    parts.extend(std::env::args().skip(1));
    parts.join(" ")
}

/// Ground-truth label implied by a corpus file name, if any: generated
/// designs are named `{tag}_tf_{i:03}` / `{tag}_ti_{i:03}`.
fn label_from_stem(stem: &str) -> Option<usize> {
    if stem.contains("_ti_") {
        Some(1)
    } else if stem.contains("_tf_") {
        Some(0)
    } else {
        None
    }
}

/// Mirrors corpus statistics into telemetry gauges/counters and the report
/// summary.
fn emit_corpus_stats(stats: &CorpusStats) -> CorpusSummary {
    telemetry::counter_add("corpus.designs", stats.total as u64);
    telemetry::gauge_set("corpus.total", stats.total as f64);
    telemetry::gauge_set("corpus.trojan_free", stats.trojan_free as f64);
    telemetry::gauge_set("corpus.trojan_infected", stats.trojan_infected as f64);
    telemetry::gauge_set("corpus.mean_lines", stats.mean_lines);
    telemetry::gauge_set("corpus.distinct_trojans", stats.distinct_trojans as f64);
    CorpusSummary {
        total: stats.total,
        trojan_free: stats.trojan_free,
        trojan_infected: stats.trojan_infected,
        mean_lines: stats.mean_lines,
        distinct_trojans: stats.distinct_trojans,
    }
}

fn cmd_gen_corpus(args: &[String]) -> Result<(), CliError> {
    let (positional, flags) = parse_flags(args)?;
    let observability = Observability::from_flags(&flags)?;
    let [dir] = positional.as_slice() else {
        return Err(CliError::msg("usage: noodle gen-corpus <dir> [--tf N] [--ti N] [--seed N]"));
    };
    let config = CorpusConfig {
        trojan_free: parse_num(&flags, "tf", 28)?,
        trojan_infected: parse_num(&flags, "ti", 12)?,
        seed: parse_num(&flags, "seed", CorpusConfig::default().seed)?,
    };
    let root = telemetry::span!("gen_corpus", seed = config.seed);
    let corpus = generate_corpus(&config);
    let dir = PathBuf::from(dir);
    fs::create_dir_all(&dir)
        .map_err(|e| CliError::msg(format!("cannot create {}: {e}", dir.display())))?;
    {
        let _write_span = telemetry::span!("gen_corpus.write", designs = corpus.len());
        for bench in &corpus {
            let path = dir.join(format!("{}.v", bench.name));
            fs::write(&path, &bench.source)
                .map_err(|e| CliError::msg(format!("cannot write {}: {e}", path.display())))?;
        }
    }
    let stats = corpus_stats(&corpus);
    let summary = emit_corpus_stats(&stats);
    drop(root);
    if !observability.quiet {
        println!(
            "wrote {} designs to {} ({} Trojan-free, {} Trojan-infected, mean {:.0} lines)",
            stats.total,
            dir.display(),
            stats.trojan_free,
            stats.trojan_infected,
            stats.mean_lines
        );
    }
    observability.finish("gen-corpus", Some(config.seed), Some(summary), None)
}

fn cmd_train(args: &[String]) -> Result<(), CliError> {
    let (positional, flags) = parse_flags(args)?;
    let observability = Observability::from_flags(&flags)?;
    let [model_path] = positional.as_slice() else {
        return Err(CliError::msg("usage: noodle train <model.json> [--corpus-seed N] [--fast]"));
    };
    let corpus_seed = parse_num(&flags, "corpus-seed", CorpusConfig::default().seed)?;
    let fast = flag_value(&flags, "fast").is_some();
    let train_seed: u64 = parse_num(&flags, "seed", 42)?;

    let root = telemetry::span!("train", corpus_seed = corpus_seed, fast = fast);
    let corpus = generate_corpus(&CorpusConfig { seed: corpus_seed, ..CorpusConfig::default() });
    let corpus_summary = emit_corpus_stats(&corpus_stats(&corpus));
    let dataset = MultimodalDataset::from_benchmarks(&corpus)
        .map_err(CliError::pipeline("corpus designs failed modality extraction"))?;
    let config = if fast { NoodleConfig::fast() } else { NoodleConfig::default() };
    let mut rng = StdRng::seed_from_u64(train_seed);
    if !observability.quiet {
        eprintln!("training on {} designs (this runs the full pipeline)...", dataset.len());
    }
    let detector = NoodleDetector::fit(&dataset, &config, &mut rng)
        .map_err(CliError::pipeline("training failed"))?;
    let eval = detector.evaluation();
    let mut brier = std::collections::BTreeMap::new();
    for strategy in FusionStrategy::ALL {
        if !observability.quiet {
            eprintln!("  {:<45} Brier {:.4}", strategy.label(), eval.brier_of(strategy));
        }
        brier.insert(format!("{strategy:?}"), eval.brier_of(strategy));
    }
    if !observability.quiet {
        eprintln!("winner: {:?}", detector.winner());
    }
    let evaluation = EvaluationSummary { winner: format!("{:?}", detector.winner()), brier };
    let json =
        detector.to_json().map_err(|e| CliError::msg(format!("cannot serialize model: {e}")))?;
    fs::write(model_path, json)
        .map_err(|e| CliError::msg(format!("cannot write {model_path}: {e}")))?;
    drop(root);
    if !observability.quiet {
        println!("model saved to {model_path}");
    }
    observability.finish("train", Some(train_seed), Some(corpus_summary), Some(evaluation))
}

fn cmd_detect(args: &[String]) -> Result<(), CliError> {
    let (positional, flags) = parse_flags(args)?;
    let observability = Observability::from_flags(&flags)?;
    let [model_path, files @ ..] = positional.as_slice() else {
        return Err(CliError::msg(
            "usage: noodle detect <model.json> <file.v>... \
             [--audit <log.jsonl>] [--batch N] [--cache-dir <dir>]",
        ));
    };
    if files.is_empty() {
        return Err(CliError::msg("no Verilog files given"));
    }
    let audit_path = flag_value(&flags, "audit").map(PathBuf::from);
    let audit_rotate_bytes: u64 = parse_num(&flags, "audit-rotate-bytes", 0)?;
    let audit_keep: usize = parse_num(&flags, "audit-keep", 8)?;
    let batch: usize = parse_num(&flags, "batch", 32)?;
    if batch == 0 {
        return Err(CliError::msg("--batch expects a positive number, got `0`"));
    }
    let root = telemetry::span!("detect_run", files = files.len(), batch = batch);

    // Read and validate every input file before touching the model: a typo
    // in the last file name must not cost a multi-second model load first.
    let mut sources = Vec::with_capacity(files.len());
    for file in files {
        let source = fs::read_to_string(Path::new(file))
            .map_err(|e| CliError::msg(format!("cannot read {file}: {e}")))?;
        sources.push(source);
    }

    let json = fs::read_to_string(model_path)
        .map_err(|e| CliError::msg(format!("cannot read {model_path}: {e}")))?;
    let mut detector = NoodleDetector::from_json(&json)
        .map_err(|e| CliError::msg(format!("{model_path} is not a valid model: {e}")))?;
    // Before the audit sinks attach, so the emitted header records the
    // serving mode actually used.
    if flag_value(&flags, "quantize").is_some() {
        detector
            .set_quantized(true)
            .map_err(CliError::pipeline(format!("{model_path} cannot serve quantized")))?;
    }
    let file_sink: Option<Box<dyn AuditSink>> = match &audit_path {
        None => None,
        Some(path) => {
            let cannot =
                |e| CliError::msg(format!("cannot create audit log {}: {e}", path.display()));
            Some(if audit_rotate_bytes > 0 {
                Box::new(
                    RotatingJsonlAudit::create(path, audit_rotate_bytes, audit_keep)
                        .map_err(cannot)?,
                ) as Box<dyn AuditSink>
            } else {
                Box::new(JsonlAudit::create(path).map_err(cannot)?)
            })
        }
    };
    // With --observe-addr, the live monitor engine rides behind the audit
    // path: tee'd with the file sink, or attached alone so `/monitor` and
    // `/healthz` stay live even without --audit.
    let live_sink: Option<Box<dyn AuditSink>> =
        observability.monitors.clone().map(|m| Box::new(m) as Box<dyn AuditSink>);
    match (file_sink, live_sink) {
        (Some(file), Some(live)) => {
            detector.set_audit_sink(Box::new(TeeAudit::new(vec![file, live])));
        }
        (Some(file), None) => detector.set_audit_sink(file),
        (None, Some(live)) => detector.set_audit_sink(live),
        (None, None) => {}
    }
    let mut cache = match flag_value(&flags, "cache-dir") {
        Some(dir) => Some(FeatureCache::with_dir(4096, Path::new(dir)).map_err(|e| {
            CliError::msg(format!("cannot open feature cache directory {dir}: {e}"))
        })?),
        None => None,
    };

    let requests: Vec<DetectRequest<'_>> = files
        .iter()
        .zip(&sources)
        .map(|(file, source)| {
            let stem = Path::new(file).file_stem().and_then(|s| s.to_str()).unwrap_or(file);
            DetectRequest { design: stem, source, label: label_from_stem(stem), trace: None }
        })
        .collect();
    let verdicts = detector
        .detect_batch(&requests, batch, cache.as_mut())
        .map_err(CliError::pipeline("cannot screen the given files"))?;

    println!(
        "{:<32} {:<9} {:>7} {:>12} {:>11}  region",
        "file", "verdict", "p(TI)", "credibility", "confidence"
    );
    for (file, verdict) in files.iter().zip(&verdicts) {
        let region = match verdict.region.as_slice() {
            [] => "{} (anomalous)".to_string(),
            [0] => "{TF}".to_string(),
            [1] => "{TI}".to_string(),
            _ => "{TF, TI} (uncertain)".to_string(),
        };
        println!(
            "{:<32} {:<9} {:>7.3} {:>12.3} {:>11.3}  {region}",
            file,
            if verdict.infected { "INFECTED" } else { "clean" },
            verdict.probability_infected,
            verdict.credibility,
            verdict.confidence,
        );
    }
    if let Some(cache) = &cache {
        if !observability.quiet {
            let stats = cache.stats();
            eprintln!(
                "feature cache: {} hits, {} misses, {} evictions",
                stats.hits, stats.misses, stats.evictions
            );
        }
    }
    // Drop the sink so its buffered writer flushes before we report.
    drop(detector.take_audit_sink());
    if let Some(path) = &audit_path {
        if !observability.quiet {
            eprintln!("audit log written to {}", path.display());
        }
    }
    drop(root);
    if telemetry::enabled() && !observability.quiet {
        let snapshot = telemetry::snapshot();
        if let Some(q) = snapshot.histograms.get("detect.latency_us").and_then(|h| h.quantiles()) {
            eprintln!(
                "detect latency: p50 {:.0} us, p95 {:.0} us, p99 {:.0} us",
                q.p50, q.p95, q.p99
            );
        }
    }
    observability.finish("detect", None, None, None)
}

/// Loads (and optionally quantizes) a detector from a model file; used
/// both at `serve` startup and for every hot swap, so a reload sees
/// exactly what a restart would.
fn load_detector(model_path: &str, quantize: bool) -> Result<NoodleDetector, String> {
    let json =
        fs::read_to_string(model_path).map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let mut detector = NoodleDetector::from_json(&json)
        .map_err(|e| format!("{model_path} is not a valid model: {e}"))?;
    if quantize {
        detector
            .set_quantized(true)
            .map_err(|e| format!("{model_path} cannot serve quantized: {e}"))?;
    }
    Ok(detector)
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let (positional, flags) = parse_flags(args)?;
    // The request-plane control surface exists before the engine so the
    // observability server's admin hook can steer it from day one.
    let ctl = ServeController::new();
    let admin: AdminFn = {
        let ctl = ctl.clone();
        Box::new(move |method, path, _body| match (method, path) {
            ("POST", "/reload") => {
                ctl.request_reload();
                Some((202, "{\"status\":\"reload requested\"}\n".to_string()))
            }
            ("POST", "/drain") => {
                ctl.request_drain();
                Some((200, "{\"status\":\"draining\"}\n".to_string()))
            }
            _ => None,
        })
    };
    let observability = Observability::from_flags_with_admin(&flags, Some(admin))?;
    // The daemon's lifecycle histograms and gauges must flow regardless of
    // --trace/--report/--observe-addr.
    telemetry::set_enabled(true);
    let [model_path] = positional.as_slice() else {
        return Err(CliError::msg(
            "usage: noodle serve <model.json> [--addr H:P] [--batch N] \
             [--batch-deadline-ms MS] [--queue-cap N] [--max-clients N] [--quantize] \
             [--slo-p99-ms MS] [--audit <log.jsonl>]",
        ));
    };
    let addr = flag_value(&flags, "addr").unwrap_or("127.0.0.1:0").to_string();
    let batch: usize = parse_num(&flags, "batch", 32)?;
    if batch == 0 {
        return Err(CliError::msg("--batch expects a positive number, got `0`"));
    }
    let batch_deadline_ms: u64 = parse_num(&flags, "batch-deadline-ms", 25)?;
    let queue_cap: usize = parse_num(&flags, "queue-cap", 256)?;
    if queue_cap == 0 {
        return Err(CliError::msg("--queue-cap expects a positive number, got `0`"));
    }
    let max_clients: usize = parse_num(&flags, "max-clients", 64)?;
    let slo_p99_ms: f64 = parse_num(&flags, "slo-p99-ms", 250.0)?;
    let quantize = flag_value(&flags, "quantize").is_some();
    let audit_path = flag_value(&flags, "audit").map(PathBuf::from);
    let audit_rotate_bytes: u64 = parse_num(&flags, "audit-rotate-bytes", 0)?;
    let audit_keep: usize = parse_num(&flags, "audit-keep", 8)?;

    // Serving SLOs ride on the streaming-monitor engine: with
    // --observe-addr they share the exposition server's (so /healthz and
    // /monitor reflect them); without it a private engine still drives the
    // alert-triggered flight dumps.
    let monitors = match &observability.monitors {
        Some(monitors) => monitors.clone(),
        None => {
            let monitors = StreamingMonitors::new(MonitorConfig::default());
            noodle::observe::install_alert_dump(&monitors, Path::new("results"));
            monitors
        }
    };
    monitors.set_slo(SloConfig { p99_target_us: slo_p99_ms * 1000.0, ..SloConfig::default() });

    let detector = load_detector(model_path, quantize).map_err(CliError::msg)?;
    let loader: ModelLoader = {
        let model_path = model_path.to_string();
        Box::new(move || load_detector(&model_path, quantize))
    };
    let file_sink: Option<Box<dyn AuditSink>> = match &audit_path {
        None => None,
        Some(path) => {
            let cannot =
                |e| CliError::msg(format!("cannot create audit log {}: {e}", path.display()));
            Some(if audit_rotate_bytes > 0 {
                Box::new(
                    RotatingJsonlAudit::create(path, audit_rotate_bytes, audit_keep)
                        .map_err(cannot)?,
                ) as Box<dyn AuditSink>
            } else {
                Box::new(JsonlAudit::create(path).map_err(cannot)?)
            })
        }
    };
    let live_sink: Box<dyn AuditSink> = Box::new(monitors.clone());
    let sink: Box<dyn AuditSink> = match file_sink {
        Some(file) => Box::new(TeeAudit::new(vec![file, live_sink])),
        None => live_sink,
    };

    let config = ServeConfig {
        addr,
        batch,
        batch_deadline: std::time::Duration::from_millis(batch_deadline_ms),
        queue_cap,
        max_clients,
        ..ServeConfig::default()
    };
    signals::install();
    let root = telemetry::span!("serve", batch = batch, queue_cap = queue_cap);
    let engine = ServeEngine::start(
        detector,
        Some(loader),
        Some(sink),
        Some(monitors.clone()),
        config,
        ctl.clone(),
    )
    .map_err(|e| CliError::msg(format!("cannot start the serve daemon: {e}")))?;
    // Always announced (port 0 resolves to an ephemeral port the caller
    // cannot know otherwise); scripts parse this line.
    eprintln!("serving detection requests at {}", engine.addr());
    if let Some(path) = &audit_path {
        if !observability.quiet {
            eprintln!("audit log streaming to {}", path.display());
        }
    }

    loop {
        if signals::take_reload() {
            if !observability.quiet {
                eprintln!("SIGHUP: model reload requested");
            }
            ctl.request_reload();
        }
        if signals::shutdown_count() >= 2 {
            eprintln!("second shutdown signal: exiting without finishing the drain");
            std::process::exit(130);
        }
        if signals::shutdown_requested() && !ctl.draining() {
            if !observability.quiet {
                eprintln!("shutdown signal: draining (send again to exit immediately)");
            }
            ctl.request_drain();
        }
        if ctl.finished() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    engine.join();
    let stats = ctl.stats();
    if !observability.quiet {
        eprintln!(
            "drained: {} served, {} shed, {} errors, {} reloads",
            stats.served, stats.shed, stats.errors, stats.reloads
        );
    }
    drop(root);
    observability.finish("serve", None, None, None)
}

fn cmd_observe(args: &[String]) -> Result<(), CliError> {
    let (positional, flags) = parse_flags(args)?;
    let observability = Observability::from_flags(&flags)?;
    let [audit_path] = positional.as_slice() else {
        return Err(CliError::msg(
            "usage: noodle observe <audit.jsonl> [--epsilon E] [--window N] [--out <report.json>] \
             [--follow [--poll-ms MS] [--idle-exit-ms MS]]",
        ));
    };
    let out = flag_value(&flags, "out").map(PathBuf::from);
    let defaults = MonitorConfig::default();
    let config = MonitorConfig {
        window: parse_num(&flags, "window", defaults.window)?,
        min_samples: parse_num(&flags, "min-samples", defaults.min_samples)?,
        epsilon: match flag_value(&flags, "epsilon") {
            None => None,
            Some(v) => Some(
                v.parse::<f64>()
                    .map_err(|_| CliError::msg(format!("--epsilon expects a number, got `{v}`")))?,
            ),
        },
        ..defaults
    };
    if flag_value(&flags, "follow").is_some() {
        let poll_ms: u64 = parse_num(&flags, "poll-ms", 500)?;
        let idle_exit_ms: u64 = parse_num(&flags, "idle-exit-ms", 0)?;
        return follow_audit_log(
            audit_path,
            config,
            out.as_deref(),
            &observability,
            poll_ms,
            idle_exit_ms,
        );
    }
    let root = telemetry::span!("observe");
    let text = fs::read_to_string(Path::new(audit_path))
        .map_err(|e| CliError::msg(format!("cannot read {audit_path}: {e}")))?;
    let (header, records) =
        parse_audit_log(&text).map_err(|e| CliError::msg(format!("{audit_path}: {e}")))?;
    telemetry::counter_add("observe.records", records.len() as u64);
    let report = replay(header.as_ref(), &records, config);
    print_monitor_report(&report, audit_path, observability.quiet);
    write_monitor_report(&report, out.as_deref(), observability.quiet)?;
    drop(root);
    observability.finish("observe", None, None, None)
}

fn print_monitor_report(report: &MonitorReport, audit_path: &str, quiet: bool) {
    if !quiet {
        let epsilon = report.epsilon.map_or_else(|| "unknown".to_string(), |e| format!("{e}"));
        println!(
            "replayed {} predictions ({} labeled) from {audit_path} (window {}, epsilon {epsilon})",
            report.records, report.labeled, report.window
        );
    }
    for status in &report.monitors {
        println!(
            "[{:<7}] {:<26} observed {:>8.4}  expected {:>8.4} (tol {:.4}, n={})  {}",
            status.health.to_string(),
            status.monitor,
            status.observed,
            status.expected,
            status.tolerance,
            status.samples,
            status.evidence,
        );
    }
    println!("overall: {}", report.overall);
}

fn write_monitor_report(
    report: &MonitorReport,
    out: Option<&Path>,
    quiet: bool,
) -> Result<(), CliError> {
    let Some(path) = out else {
        return Ok(());
    };
    report
        .write_to(path)
        .map_err(|e| CliError::msg(format!("cannot write {}: {e}", path.display())))?;
    if !quiet {
        eprintln!("monitor report written to {}", path.display());
    }
    Ok(())
}

/// `observe --follow`: tails a growing (and possibly rotating) audit log
/// through the same [`StreamingMonitors`] engine that batch replay uses,
/// printing a line whenever a monitor's health changes.
///
/// Runs until interrupted, or until the log has been idle for
/// `--idle-exit-ms` (0 = forever); on exit it prints the standard monitor
/// summary and honours `--out`.
fn follow_audit_log(
    audit_path: &str,
    config: MonitorConfig,
    out: Option<&Path>,
    observability: &Observability,
    poll_ms: u64,
    idle_exit_ms: u64,
) -> Result<(), CliError> {
    let stream = StreamingMonitors::new(config);
    // With --observe-addr, mirror the tail into the exporter's engine so
    // /monitor and /healthz track the followed log live.
    let mirror = observability.monitors.clone();
    let mut follower = LogFollower::new(Path::new(audit_path));
    if !observability.quiet {
        eprintln!("following {audit_path} (poll {poll_ms} ms, ctrl-c to stop)");
    }
    let mut last_news = std::time::Instant::now();
    loop {
        let lines = follower.poll();
        if !lines.is_empty() {
            last_news = std::time::Instant::now();
        }
        for line in lines {
            match line {
                AuditLine::Header(header) => {
                    stream.observe_header(&header);
                    if let Some(mirror) = &mirror {
                        mirror.observe_header(&header);
                    }
                }
                AuditLine::Prediction(record) => {
                    stream.observe(&record);
                    if let Some(mirror) = &mirror {
                        mirror.observe(&record);
                    }
                    telemetry::counter_add("observe.records", 1);
                }
            }
        }
        for transition in stream.transitions_since_last() {
            println!(
                "[{} -> {}] {:<26} after {} records: {}",
                transition.from,
                transition.status.health,
                transition.status.monitor,
                stream.records(),
                transition.status.evidence,
            );
        }
        if idle_exit_ms > 0 && last_news.elapsed().as_millis() >= u128::from(idle_exit_ms) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(poll_ms.max(10)));
    }
    let report = stream.report();
    print_monitor_report(&report, audit_path, observability.quiet);
    write_monitor_report(&report, out, observability.quiet)?;
    observability.finish("observe", None, None, None)
}

/// Re-renders the summary of a trace recorded with `--profile`, offline:
/// the peak GFLOP/s and memory counters ride along in the trace's
/// `otherData` block, so no model or corpus is needed.
fn cmd_profile(args: &[String]) -> Result<(), CliError> {
    let (positional, flags) = parse_flags(args)?;
    let observability = Observability::from_flags(&flags)?;
    let [trace_path] = positional.as_slice() else {
        return Err(CliError::msg("usage: noodle profile <trace.json>"));
    };
    let text = fs::read_to_string(Path::new(trace_path))
        .map_err(|e| CliError::msg(format!("cannot read {trace_path}: {e}")))?;
    let (prof, meta) = profile::read_chrome_trace(&text)
        .map_err(|e| CliError::msg(format!("{trace_path}: {e}")))?;
    let summary = profile::summarize(&prof, meta.peak_gflops, meta.mem);
    if !observability.quiet && !meta.command.is_empty() {
        println!("trace of `{}` (noodle {})", meta.command, meta.tool_version);
    }
    print!("{}", profile::render_summary(&summary));
    observability.finish("profile", None, None, None)
}

fn cmd_inspect(args: &[String]) -> Result<(), CliError> {
    let (positional, flags) = parse_flags(args)?;
    let observability = Observability::from_flags(&flags)?;
    let [file] = positional.as_slice() else {
        return Err(CliError::msg("usage: noodle inspect <file.v>"));
    };
    let root = telemetry::span!("inspect");
    let source = fs::read_to_string(Path::new(file))
        .map_err(|e| CliError::msg(format!("cannot read {file}: {e}")))?;
    let (graph, tabular) = extract_modalities(&source)
        .map_err(CliError::pipeline(format!("cannot inspect {file}")))?;
    println!("tabular features ({}):", tabular.len());
    for (name, value) in noodle::tabular::FEATURE_NAMES.iter().zip(&tabular) {
        println!("  {name:<22} {value}");
    }
    let nonzero = graph.iter().filter(|&&v| v > 0.0).count();
    println!("\ngraph image: {} cells, {nonzero} non-zero", graph.len());
    drop(root);
    observability.finish("inspect", None, None, None)
}
