//! # NOODLE — uncertainty-aware hardware Trojan detection in Rust
//!
//! A from-scratch Rust reproduction of *"Uncertainty-Aware Hardware Trojan
//! Detection Using Multimodal Deep Learning"* (Vishwakarma & Rezaei,
//! DATE 2024). This facade crate re-exports the full workspace:
//!
//! | Module | Crate | What it provides |
//! |---|---|---|
//! | [`verilog`] | `noodle-verilog` | Verilog-2001 subset lexer/parser/AST/printer |
//! | [`bench_gen`] | `noodle-bench-gen` | synthetic TrustHub-like corpus + RTL Trojan insertion |
//! | [`graph`] | `noodle-graph` | circuit graphs, graph statistics, graph-image embeddings |
//! | [`tabular`] | `noodle-tabular` | code-branching tabular features |
//! | [`nn`] | `noodle-nn` | tensors, CNN layers, losses, optimizers |
//! | [`gan`] | `noodle-gan` | class-conditional GAN amplification + cross-modal imputation |
//! | [`conformal`] | `noodle-conformal` | Mondrian ICP, p-value combination, prediction regions |
//! | [`metrics`] | `noodle-metrics` | Brier (+decompositions), ROC/AUC, calibration, radar |
//! | [`telemetry`] | `noodle-telemetry` | spans, counters/histograms, run reports |
//! | [`profile`] | `noodle-profile` | per-thread profiler, Chrome-trace export, roofline summary |
//! | [`observe`] | `noodle-observe` | prediction audit logs, coverage/drift monitors |
//! | [`export`] | `noodle-export` | live /metrics, /monitor and /healthz exposition server |
//! | [`core`] | `noodle-core` | the end-to-end NOODLE detector |
//! | [`serve`] | `noodle-serve` | long-running JSONL-over-TCP detection daemon |
//!
//! The most-used types are also re-exported at the crate root.
//!
//! ## Quickstart
//!
//! ```no_run
//! use noodle::{generate_corpus, CorpusConfig, MultimodalDataset, NoodleConfig, NoodleDetector};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), noodle::PipelineError> {
//! let corpus = generate_corpus(&CorpusConfig::default());
//! let dataset = MultimodalDataset::from_benchmarks(&corpus)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let mut detector = NoodleDetector::fit(&dataset, &NoodleConfig::default(), &mut rng)?;
//! let verdict = detector.detect(&corpus[0].source)?;
//! println!("{} infected={} p={:.3}", corpus[0].name, verdict.infected,
//!          verdict.probability_infected);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use noodle_bench_gen as bench_gen;
pub use noodle_compute as compute;
pub use noodle_conformal as conformal;
pub use noodle_core as core;
pub use noodle_export as export;
pub use noodle_gan as gan;
pub use noodle_graph as graph;
pub use noodle_metrics as metrics;
pub use noodle_nn as nn;
pub use noodle_observe as observe;
pub use noodle_profile as profile;
pub use noodle_serve as serve;
pub use noodle_tabular as tabular;
pub use noodle_telemetry as telemetry;
pub use noodle_verilog as verilog;

pub use noodle_bench_gen::{generate_corpus, Benchmark, CorpusConfig, Label, TrojanSpec};
pub use noodle_conformal::{Combiner, ConformalPrediction, MondrianIcp};
pub use noodle_core::{
    cross_validate, extract_modalities, CacheStats, CrossValidation, DetectRequest, Detection,
    EvaluationReport, FeatureCache, FusionStrategy, MultimodalDataset, NoodleConfig,
    NoodleDetector, PipelineError,
};
pub use noodle_export::ExportServer;
pub use noodle_metrics::{brier_score, roc_curve, RadarMetrics};
pub use noodle_observe::{
    AuditSink, Health, JsonlAudit, MonitorConfig, MonitorReport, MonitorSuite, PredictionRecord,
    RotatingJsonlAudit, StreamingMonitors,
};
pub use noodle_serve::{ServeConfig, ServeController, ServeEngine, ServeRequest, ServeResponse};
pub use noodle_telemetry::{RunReport, TelemetrySnapshot};
